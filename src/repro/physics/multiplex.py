"""Frequency multiplexing of per-qubit baseband fields onto one feedline.

Each qubit's readout tone sits at its own intermediate frequency inside the
ADC Nyquist band; the feedline carries the sum. Inter-resonator crosstalk
mixes the baseband fields *before* upconversion, so a neighbor's state
bleeds into each qubit's tone — the error mechanism the paper's
all-qubit-input neural network corrects.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import ShapeError
from repro.physics.device import ChipConfig

__all__ = ["apply_crosstalk", "upconvert", "combine_feedline"]

TWO_PI = 2.0 * math.pi


def apply_crosstalk(
    basebands: np.ndarray, crosstalk: np.ndarray
) -> np.ndarray:
    """Mix baseband fields: ``mixed[q] = base[q] + sum_p C[q, p] base[p]``.

    ``basebands`` has shape (n_qubits, n_shots, trace_len).
    """
    basebands = np.asarray(basebands)
    if basebands.ndim != 3:
        raise ShapeError(f"basebands must be 3-D, got {basebands.shape}")
    n_qubits = basebands.shape[0]
    xt = np.asarray(crosstalk, dtype=complex)
    if xt.shape != (n_qubits, n_qubits):
        raise ShapeError(
            f"crosstalk must be ({n_qubits}, {n_qubits}), got {xt.shape}"
        )
    mixing = np.eye(n_qubits, dtype=complex) + xt
    return np.einsum("qp,pst->qst", mixing, basebands)


def upconvert(
    baseband: np.ndarray, if_frequency_ghz: float, times_ns: np.ndarray
) -> np.ndarray:
    """Shift a baseband field to its intermediate frequency."""
    times_ns = np.asarray(times_ns)
    tone = np.exp(1j * TWO_PI * if_frequency_ghz * times_ns)
    return baseband * tone


def combine_feedline(
    chip: ChipConfig, basebands: np.ndarray, times_ns: np.ndarray
) -> np.ndarray:
    """Produce the multiplexed feedline signal for a batch of shots.

    Applies crosstalk mixing, upconverts each qubit to its IF, and sums.
    Returns a complex array (n_shots, trace_len).
    """
    basebands = np.asarray(basebands)
    if basebands.shape[0] != chip.n_qubits:
        raise ShapeError(
            f"expected {chip.n_qubits} qubit basebands, got {basebands.shape[0]}"
        )
    mixed = apply_crosstalk(basebands, chip.crosstalk)
    feedline = np.zeros(basebands.shape[1:], dtype=np.complex128)
    for q, qubit in enumerate(chip.qubits):
        feedline += upconvert(mixed[q], qubit.if_frequency_ghz, times_ns)
    return feedline
