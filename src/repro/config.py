"""Experiment sizing profiles.

The paper's corpus (32 basis states x 50,000 shots of 1 us traces) is far too
large for a CI box, so every experiment runner takes a :class:`Profile` that
scales shot counts and training budgets while preserving every architectural
dimension (qubit count, level count, trace length, network topology).

Three named profiles are provided:

``quick``
    Smallest corpus that still separates the designs; used by the test suite
    and the default for benchmarks.
``full``
    Larger corpus for overnight runs; tighter statistics, same shapes.
``paper``
    Mirrors the published setup (50k shots per basis state). Provided for
    completeness; not intended for CI.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.exceptions import ConfigurationError

__all__ = ["Profile", "QUICK", "FULL", "PAPER", "get_profile"]


@dataclass(frozen=True)
class Profile:
    """Sizing knobs shared by all experiment runners.

    Parameters
    ----------
    name:
        Human-readable profile name.
    shots_per_state:
        Readout traces generated per joint basis state (the paper uses 50k).
    calibration_shots:
        Two-level calibration shots per prepared computational state, used by
        the leakage-cluster detection study (Fig 3).
    nn_epochs:
        Training epochs for the lightweight per-qubit networks (OURS,
        HERQULES head).
    fnn_epochs:
        Training epochs for the large FNN baseline (it is the slow one, so it
        gets its own budget).
    batch_size:
        Minibatch size for all NN training.
    qec_shots:
        Monte-Carlo repetitions for the surface-code leakage studies.
    qudit_shots:
        Shots for the repeated-CNOT leakage experiments (paper: 10,000).
    spectral_max_points:
        Cap on points fed to spectral clustering (it is O(m^2)); the
        remainder is assigned to the nearest cluster centroid.
    seed:
        Base RNG seed; experiments derive sub-seeds deterministically.
    """

    name: str
    shots_per_state: int
    calibration_shots: int
    nn_epochs: int
    fnn_epochs: int
    batch_size: int
    qec_shots: int
    qudit_shots: int
    spectral_max_points: int
    seed: int = 20250607

    def __post_init__(self) -> None:
        positive = {
            "shots_per_state": self.shots_per_state,
            "calibration_shots": self.calibration_shots,
            "nn_epochs": self.nn_epochs,
            "fnn_epochs": self.fnn_epochs,
            "batch_size": self.batch_size,
            "qec_shots": self.qec_shots,
            "qudit_shots": self.qudit_shots,
            "spectral_max_points": self.spectral_max_points,
        }
        for field_name, value in positive.items():
            if value <= 0:
                raise ConfigurationError(
                    f"Profile.{field_name} must be positive, got {value!r}"
                )

    def with_seed(self, seed: int) -> "Profile":
        """Return a copy of this profile with a different base seed."""
        return replace(self, seed=seed)


QUICK = Profile(
    name="quick",
    shots_per_state=16,
    calibration_shots=2000,
    nn_epochs=150,
    fnn_epochs=15,
    batch_size=128,
    qec_shots=150,
    qudit_shots=2000,
    spectral_max_points=1200,
)

FULL = Profile(
    name="full",
    shots_per_state=120,
    calibration_shots=6000,
    nn_epochs=120,
    fnn_epochs=40,
    batch_size=256,
    qec_shots=3000,
    qudit_shots=10000,
    spectral_max_points=3000,
)

PAPER = Profile(
    name="paper",
    shots_per_state=50_000,
    calibration_shots=100_000,
    nn_epochs=120,
    fnn_epochs=60,
    batch_size=512,
    qec_shots=100_000,
    qudit_shots=10_000,
    spectral_max_points=5000,
)

_PROFILES = {p.name: p for p in (QUICK, FULL, PAPER)}


def get_profile(name: str) -> Profile:
    """Look up a named profile (``quick``, ``full``, or ``paper``)."""
    try:
        return _PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(_PROFILES))
        raise ConfigurationError(f"unknown profile {name!r}; expected one of {known}")
