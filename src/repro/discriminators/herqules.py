"""HERQULES (ISCA'23) extended to three-level readout.

HERQULES demodulates, applies qubit and relaxation matched filters (no
excitation filters), and classifies all qubits *collectively*: the input
is ``6 * n_qubits`` filter scores (30 for five qubits) and the output layer
enumerates all ``3**n`` joint states (243) — the exponential head the paper
identifies as its scaling flaw.
"""

from __future__ import annotations

import numpy as np

from repro._util import check_random_state, child_rng
from repro.data.basis import n_basis_states
from repro.data.dataset import ReadoutCorpus
from repro.discriminators.base import Discriminator
from repro.discriminators.features import MatchedFilterFeatureExtractor
from repro.discriminators.registry import NN_LEARNING_RATE, register
from repro.exceptions import ConfigurationError
from repro.ml.dataset import StandardScaler
from repro.ml.nn import Adam, MLPClassifier, train_classifier

__all__ = ["HerqulesDiscriminator"]


@register(
    "herqules",
    description="QMF+RMF scores into a joint 3^n head (ISCA'23 baseline)",
)
class HerqulesDiscriminator(Discriminator):
    """Joint-state classifier over QMF+RMF scores.

    Parameters
    ----------
    hidden_sizes:
        Hidden widths of the joint head; the paper's Fig 2 shows (60, 120).
    decimation, variance_mode:
        Matched-filter front end configuration (shared with the paper's
        design for a controlled comparison).
    epochs, batch_size, learning_rate, seed:
        Training budget.
    """

    name = "herqules"

    @classmethod
    def from_profile(cls, profile) -> "HerqulesDiscriminator":
        return cls(
            epochs=profile.nn_epochs,
            batch_size=profile.batch_size,
            learning_rate=NN_LEARNING_RATE,
            seed=profile.seed + 11,
        )

    def __init__(
        self,
        hidden_sizes: tuple[int, ...] = (60, 120),
        decimation: int = 5,
        variance_mode: str = "sum",
        epochs: int = 30,
        batch_size: int = 128,
        learning_rate: float = 1e-3,
        weight_decay: float = 1e-3,
        patience: int = 20,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if not hidden_sizes:
            raise ConfigurationError("hidden_sizes must not be empty")
        self.hidden_sizes = tuple(int(h) for h in hidden_sizes)
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.weight_decay = weight_decay
        self.patience = patience
        self._rng = check_random_state(seed)
        self.extractor = MatchedFilterFeatureExtractor(
            include_qmf=True,
            include_rmf=True,
            include_emf=False,
            decimation=decimation,
            variance_mode=variance_mode,
        )
        self.model: MLPClassifier | None = None
        self.scaler: StandardScaler | None = None

    @property
    def n_parameters(self) -> int:
        if self.model is None:
            raise ConfigurationError(
                "architecture unknown before fit(); call fit() first"
            )
        return self.model.n_parameters

    def fit(
        self, corpus: ReadoutCorpus, indices: np.ndarray
    ) -> "HerqulesDiscriminator":
        idx = self._resolve_indices(corpus, indices)
        features = self.extractor.fit_transform(corpus, idx)
        self.scaler = StandardScaler()
        x = self.scaler.fit_transform(features)
        n_out = n_basis_states(corpus.n_qubits, corpus.n_levels)
        self.model = MLPClassifier(
            (x.shape[1], *self.hidden_sizes, n_out),
            seed=child_rng(self._rng, 0),
        )
        train_classifier(
            self.model,
            x,
            corpus.labels[idx],
            epochs=self.epochs,
            batch_size=self.batch_size,
            optimizer=Adam(self.learning_rate, weight_decay=self.weight_decay),
            patience=self.patience,
            seed=child_rng(self._rng, 1),
        )
        self._fitted = True
        return self

    def predict(
        self, corpus: ReadoutCorpus, indices: np.ndarray | None = None
    ) -> np.ndarray:
        self._require_fitted()
        idx = self._resolve_indices(corpus, indices)
        features = self.extractor.transform(corpus, idx)
        return self.model.predict(self.scaler.transform(features))

    def _artifact_meta(self) -> dict:
        ext_meta, _ = self.extractor.artifact_state()
        return {
            "extractor": ext_meta,
            "hidden_sizes": list(self.hidden_sizes),
            "layer_sizes": list(self.model.layer_sizes),
        }

    def _artifact_arrays(self) -> dict[str, np.ndarray]:
        _, arrays = self.extractor.artifact_state()
        self._pack_scaler(arrays, self.scaler)
        self._pack_mlp(arrays, self.model, "model")
        return arrays

    @classmethod
    def _from_artifacts(
        cls, meta: dict, arrays: dict[str, np.ndarray]
    ) -> "HerqulesDiscriminator":
        from repro.discriminators.features import MatchedFilterFeatureExtractor

        extractor = MatchedFilterFeatureExtractor.from_artifact_state(
            meta["extractor"], arrays
        )
        disc = cls(
            hidden_sizes=tuple(meta["hidden_sizes"]),
            decimation=extractor.decimation,
            variance_mode=extractor.variance_mode,
        )
        disc.extractor = extractor
        disc.scaler = cls._unpack_scaler(arrays)
        disc.model = cls._unpack_mlp(meta["layer_sizes"], arrays, "model")
        disc._fitted = True
        return disc
