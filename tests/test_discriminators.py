"""Tests for feature extraction, error-trace mining, and the discriminators."""

import numpy as np
import pytest

from repro.data.basis import digits_to_state
from repro.discriminators import (
    Discriminator,
    FNNBaseline,
    HerqulesDiscriminator,
    MatchedFilterFeatureExtractor,
    MLRDiscriminator,
    detect_leakage_clusters,
    tag_error_traces,
)
from repro.discriminators.error_traces import state_centroids
from repro.exceptions import ConfigurationError, DataError, NotFittedError
from repro.ml import stratified_split
from repro.ml.metrics import per_qubit_fidelity


@pytest.fixture(scope="module")
def split(tiny_corpus):
    return stratified_split(tiny_corpus.labels, 0.5, seed=11)


@pytest.fixture(scope="module")
def fitted_mlr(tiny_corpus, split):
    train, _ = split
    disc = MLRDiscriminator(epochs=60, learning_rate=3e-3, seed=1)
    disc.fit(tiny_corpus, train)
    return disc


class TestErrorTraces:
    def test_centroids_shape(self, rng):
        pts = rng.normal(size=(30, 2))
        labels = np.repeat([0, 1, 2], 10)
        cents = state_centroids(pts, labels, 3)
        assert cents.shape == (3, 2)

    def test_missing_level_rejected(self, rng):
        pts = rng.normal(size=(10, 2))
        with pytest.raises(DataError):
            state_centroids(pts, np.zeros(10, int), 3)

    def test_tagging_finds_planted_errors(self, rng):
        centers = np.array([[0.0, 0.0], [5.0, 0.0], [0.0, 5.0]])
        pts = np.vstack(
            [rng.normal(c, 0.2, size=(50, 2)) for c in centers]
        )
        labels = np.repeat([0, 1, 2], 50)
        # Plant relaxation errors: 5 traces labeled 1 sitting at centroid 0.
        pts[50:55] = rng.normal(centers[0], 0.2, size=(5, 2))
        masks = tag_error_traces(pts, labels, 3)
        assert masks[(1, 0)].sum() == 5
        assert masks[(0, 1)].sum() == 0

    def test_masks_partition_disagreements(self, rng):
        pts = rng.normal(size=(60, 2))
        labels = rng.integers(0, 3, size=60)
        try:
            masks = tag_error_traces(pts, labels, 3)
        except DataError:
            pytest.skip("random draw missed a level")
        for (prep, tgt), mask in masks.items():
            assert np.all(labels[mask] == prep)


class TestFeatureExtractor:
    def test_feature_count_matches_paper(self, tiny_corpus, split):
        train, _ = split
        ext = MatchedFilterFeatureExtractor().fit(tiny_corpus, train)
        features = ext.transform(tiny_corpus, train[:10])
        # 9 filters per qubit x 2 qubits.
        assert features.shape == (10, 18)
        assert ext.filters_per_qubit == 9
        assert len(ext.feature_names) == 18

    def test_herqules_feature_subset(self, tiny_corpus, split):
        train, _ = split
        ext = MatchedFilterFeatureExtractor(include_emf=False).fit(
            tiny_corpus, train
        )
        assert ext.filters_per_qubit == 6

    def test_features_separate_levels(self, tiny_corpus, split):
        train, test = split
        ext = MatchedFilterFeatureExtractor().fit(tiny_corpus, train)
        feats = ext.transform(tiny_corpus, test)
        lv = tiny_corpus.qubit_labels(0)[test]
        # qmf01 column of qubit 0 orders the level means.
        col = ext.feature_names.index("q0-qmf01")
        assert feats[lv == 1, col].mean() > feats[lv == 0, col].mean()

    def test_transform_before_fit_raises(self, tiny_corpus):
        ext = MatchedFilterFeatureExtractor()
        with pytest.raises(NotFittedError):
            ext.transform(tiny_corpus)

    def test_truncated_corpus_transform(self, tiny_corpus, split):
        train, test = split
        ext = MatchedFilterFeatureExtractor().fit(tiny_corpus, train)
        short = tiny_corpus.truncated(100)
        feats = ext.transform(short, test[:5])
        assert feats.shape == (5, 18)

    def test_longer_corpus_rejected(self, tiny_corpus, split):
        train, _ = split
        short = tiny_corpus.truncated(100)
        ext = MatchedFilterFeatureExtractor().fit(short, train)
        with pytest.raises(DataError):
            ext.transform(tiny_corpus, train[:5])

    def test_at_least_one_family_required(self):
        with pytest.raises(ConfigurationError):
            MatchedFilterFeatureExtractor(
                include_qmf=False, include_rmf=False, include_emf=False
            )


class TestDiscriminators:
    def test_mlr_learns_tiny_chip(self, tiny_corpus, split, fitted_mlr):
        _, test = split
        pred = fitted_mlr.predict(tiny_corpus, test)
        fid = per_qubit_fidelity(tiny_corpus.labels[test], pred, 2, 3)
        assert np.all(fid > 0.8)

    def test_mlr_parameter_count_is_small(self, fitted_mlr):
        # 2 qubits -> 18 features -> [18, 9, 4, 3] per qubit.
        assert fitted_mlr.n_parameters < 1000

    def test_mlr_joint_prediction_consistent_with_levels(
        self, tiny_corpus, split, fitted_mlr
    ):
        _, test = split
        levels = fitted_mlr.predict_qubit_levels(tiny_corpus, test)
        joint = fitted_mlr.predict(tiny_corpus, test)
        np.testing.assert_array_equal(digits_to_state(levels, 3), joint)

    def test_mlr_probabilities_normalized(self, tiny_corpus, split, fitted_mlr):
        _, test = split
        probs = fitted_mlr.predict_proba_qubit(0, tiny_corpus, test[:20])
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-9)

    def test_mlr_unfitted_predict_raises(self, tiny_corpus):
        with pytest.raises(NotFittedError):
            MLRDiscriminator().predict(tiny_corpus)

    def test_scaler_recalibration_keeps_networks(
        self, tiny_corpus, split, fitted_mlr
    ):
        train, test = split
        short = tiny_corpus.truncated(120)
        clone = fitted_mlr.with_recalibrated_scaler(short, train)
        assert clone.models is fitted_mlr.models
        assert clone.scaler is not fitted_mlr.scaler
        pred = clone.predict(short, test)
        fid = per_qubit_fidelity(tiny_corpus.labels[test], pred, 2, 3)
        assert np.all(fid > 0.6)

    def test_herqules_fits_and_predicts(self, tiny_corpus, split):
        train, test = split
        disc = HerqulesDiscriminator(epochs=40, learning_rate=3e-3, seed=2)
        disc.fit(tiny_corpus, train)
        pred = disc.predict(tiny_corpus, test)
        fid = per_qubit_fidelity(tiny_corpus.labels[test], pred, 2, 3)
        assert np.all(fid > 0.6)
        # Joint head: 30 features would be 5 qubits; here 12 -> 60 -> 120 -> 9.
        assert disc.model.n_classes == 9

    def test_fnn_fits_and_predicts(self, tiny_corpus, split):
        train, test = split
        disc = FNNBaseline(hidden_sizes=(64, 32), epochs=15, seed=3)
        disc.fit(tiny_corpus, train)
        pred = disc.predict(tiny_corpus, test)
        assert pred.shape == test.shape
        assert disc.n_parameters > 10_000

    def test_mlr_beats_herqules_on_leakage_heavy_chip(self, tiny_corpus, split):
        """The modular design should not lose to the joint head."""
        train, test = split
        ours = MLRDiscriminator(epochs=60, learning_rate=3e-3, seed=4)
        herq = HerqulesDiscriminator(epochs=60, learning_rate=3e-3, seed=4)
        ours.fit(tiny_corpus, train)
        herq.fit(tiny_corpus, train)
        fid_ours = per_qubit_fidelity(
            tiny_corpus.labels[test], ours.predict(tiny_corpus, test), 2, 3
        )
        fid_herq = per_qubit_fidelity(
            tiny_corpus.labels[test], herq.predict(tiny_corpus, test), 2, 3
        )
        assert fid_ours.mean() > fid_herq.mean() - 0.02


class TestLeakageDetection:
    def test_detects_natural_leakage(self, tiny_calibration):
        result = detect_leakage_clusters(tiny_calibration, 1, seed=5)
        assert result.n_true_leaked > 0
        assert result.recall > 0.5
        # Enrichment over the base rate.
        base_rate = result.n_true_leaked / tiny_calibration.n_traces
        assert result.precision > 3 * base_rate

    def test_kmeans_method_also_works(self, tiny_calibration):
        result = detect_leakage_clusters(
            tiny_calibration, 1, method="kmeans", seed=5
        )
        assert result.recall > 0.5

    def test_cluster_sizes_sum_to_shots(self, tiny_calibration):
        result = detect_leakage_clusters(tiny_calibration, 0, seed=6)
        assert int(result.cluster_sizes.sum()) == tiny_calibration.n_traces

    def test_rejects_three_level_corpus(self, tiny_corpus):
        with pytest.raises(DataError):
            detect_leakage_clusters(tiny_corpus, 0)

    def test_rejects_bad_method(self, tiny_calibration):
        with pytest.raises(ConfigurationError):
            detect_leakage_clusters(tiny_calibration, 0, method="dbscan")


class TestResolveIndices:
    def test_none_selects_all(self, tiny_corpus, fitted_mlr):
        assert fitted_mlr.predict(tiny_corpus).shape[0] == tiny_corpus.n_traces

    def test_negative_index_rejected(self, tiny_corpus, fitted_mlr):
        with pytest.raises(ValueError, match="non-negative"):
            fitted_mlr.predict(tiny_corpus, np.array([0, -1]))

    def test_out_of_range_index_rejected(self, tiny_corpus, fitted_mlr):
        with pytest.raises(ValueError, match="out of range"):
            fitted_mlr.predict(tiny_corpus, np.array([tiny_corpus.n_traces]))

    def test_non_1d_rejected(self, tiny_corpus, fitted_mlr):
        with pytest.raises(ValueError, match="1-D"):
            fitted_mlr.predict(tiny_corpus, np.array([[0, 1]]))

    def test_float_indices_rejected(self, tiny_corpus, fitted_mlr):
        with pytest.raises(ValueError, match="integers"):
            fitted_mlr.predict(tiny_corpus, np.array([0.5, 1.5]))

    def test_empty_selection_rejected(self, tiny_corpus, fitted_mlr):
        with pytest.raises(ValueError, match="at least one"):
            fitted_mlr.predict(tiny_corpus, np.array([], dtype=np.int64))

    def test_fit_validates_indices_too(self, tiny_corpus):
        with pytest.raises(ValueError, match="non-negative"):
            MLRDiscriminator(epochs=2).fit(tiny_corpus, np.array([-1, 5]))
        with pytest.raises(ValueError, match="out of range"):
            FNNBaseline(epochs=2).fit(
                tiny_corpus, np.array([tiny_corpus.n_traces])
            )


class TestArtifacts:
    def test_mlr_roundtrip_preserves_predictions(
        self, tiny_corpus, split, fitted_mlr, tmp_path
    ):
        _, test = split
        path = tmp_path / "mlr.npz"
        fitted_mlr.save_artifacts(path)
        loaded = Discriminator.load_artifacts(path)
        assert isinstance(loaded, MLRDiscriminator)
        assert loaded.n_parameters == fitted_mlr.n_parameters
        assert np.array_equal(
            loaded.predict(tiny_corpus, test), fitted_mlr.predict(tiny_corpus, test)
        )

    def test_herqules_roundtrip_preserves_predictions(
        self, tiny_corpus, split, tmp_path
    ):
        train, test = split
        disc = HerqulesDiscriminator(epochs=4, seed=2).fit(tiny_corpus, train)
        path = tmp_path / "herqules.npz"
        disc.save_artifacts(path)
        loaded = Discriminator.load_artifacts(path)
        assert isinstance(loaded, HerqulesDiscriminator)
        assert np.array_equal(
            loaded.predict(tiny_corpus, test), disc.predict(tiny_corpus, test)
        )

    def test_fnn_roundtrip_preserves_predictions(self, tiny_corpus, split, tmp_path):
        train, test = split
        disc = FNNBaseline(epochs=2, seed=3).fit(tiny_corpus, train)
        path = tmp_path / "fnn.npz"
        disc.save_artifacts(path)
        loaded = Discriminator.load_artifacts(path)
        assert isinstance(loaded, FNNBaseline)
        assert np.array_equal(
            loaded.predict(tiny_corpus, test), disc.predict(tiny_corpus, test)
        )

    def test_unfitted_export_rejected(self, tmp_path):
        with pytest.raises(NotFittedError):
            MLRDiscriminator().save_artifacts(tmp_path / "x.npz")

    def test_load_on_wrong_subclass_rejected(self, fitted_mlr, tmp_path):
        path = tmp_path / "mlr.npz"
        fitted_mlr.save_artifacts(path)
        with pytest.raises(DataError, match="not a"):
            FNNBaseline.load_artifacts(path)

    def test_non_artifact_file_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, stuff=np.arange(3))
        with pytest.raises(DataError, match="not a discriminator artifact"):
            Discriminator.load_artifacts(path)
