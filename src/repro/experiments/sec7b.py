"""Sec VII.B — QEC cycle-time reduction from faster readout.

Paper: the 200 ns readout reduction yields up to a 17% decrease in QEC
cycle time for the surface-17 circuit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api.registry import experiment
from repro.api.results import ExperimentResult
from repro.config import QUICK, Profile
from repro.experiments.report import format_rows
from repro.qec import cycle_time_ns, cycle_time_reduction

__all__ = ["Sec7bResult", "run_sec7b_cycle_time"]

BASELINE_READOUT_NS = 1000.0
REDUCED_READOUT_NS = 800.0

#: Paper: "up to a 17% decrease in QEC cycle time".
PAPER_VALUES = {"reduction": 0.17}


@dataclass(frozen=True)
class Sec7bResult(ExperimentResult):
    """Cycle times at both readout durations and the reduction."""

    baseline_cycle_ns: float
    reduced_cycle_ns: float
    reduction: float

    def _paper_values(self) -> dict:
        return PAPER_VALUES

    def format_table(self) -> str:
        table = format_rows(
            ("Readout(ns)", "Cycle(ns)"),
            [
                (int(BASELINE_READOUT_NS), round(self.baseline_cycle_ns, 1)),
                (int(REDUCED_READOUT_NS), round(self.reduced_cycle_ns, 1)),
            ],
            title="Sec VII.B: surface-17 QEC cycle time",
        )
        return f"{table}\ncycle-time reduction: {self.reduction:.1%} (paper: up to 17%)"


@experiment("sec7b", tags=("qec", "timing"), paper_ref="Sec. VII.B")
def run_sec7b_cycle_time(profile: Profile = QUICK) -> Sec7bResult:
    """Evaluate the cycle-time model at 1000 ns and 800 ns readout."""
    return Sec7bResult(
        baseline_cycle_ns=cycle_time_ns(BASELINE_READOUT_NS),
        reduced_cycle_ns=cycle_time_ns(REDUCED_READOUT_NS),
        reduction=cycle_time_reduction(BASELINE_READOUT_NS, REDUCED_READOUT_NS),
    )
