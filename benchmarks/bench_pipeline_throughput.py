"""Streaming-pipeline bench: shots/sec and per-stage p50/p99 latency.

Calibrates once into a temporary registry, then streams simulated traffic
through the batched demod -> matched-filter -> discriminator -> ERASER
runtime, cold and warm. Shape asserted: the warm run serves calibration
from the registry without refitting, every stage reports latency, and the
measured per-shot compute latency is scored against the FPGA decision
budget.

The cluster sweep streams a feedline-count x shard-executor grid through
:func:`repro.pipeline.run_multi_feedline_pipeline` (warm registry, so the
grid times serving, not calibration) and records global shots/sec per
cell — the scaling story of the multi-feedline refactor.

The serve-warm bench (``pipeline_serve_warm``) compares one warmed
:class:`repro.serve.ReadoutService` session running the same traffic
repeatedly against the same number of cold ``repro.api.run_pipeline``
calls: the session must perform zero refits after warm-up and beat the
cold calls' aggregate shots/sec (which pay calibration every time) —
the amortization story of the serving redesign.

The zero-copy bench (``pipeline_zero_copy``) replays one pre-generated
corpus through shared memory under the legacy per-channel engine and
the fused zero-copy engine — identical assignment counts required, and
the fused engine must not be slower. With the simulator out of the
timed window, this is the serving-throughput headline of the fused
kernel + buffer-ring + shared-memory refactor.

Runs standalone too (that is how the perf trajectory is recorded)::

    PYTHONPATH=src:. python benchmarks/bench_pipeline_throughput.py \
        --shots 2000 --workers 4 --json BENCH_pipeline.json
"""

from __future__ import annotations

import argparse
import json
import tempfile

from benchmarks.conftest import record_bench_result, run_once
from repro.config import get_profile
from repro.pipeline import (
    PipelineConfig,
    run_multi_feedline_pipeline,
    run_streaming_pipeline,
)


def _stream_cold_and_warm(profile, n_shots=2000, workers=2, batch_size=64):
    """Cold (fit + stream) then warm (load + stream) runs, one registry."""
    with tempfile.TemporaryDirectory() as registry_dir:
        cold = run_streaming_pipeline(
            profile,
            n_shots=n_shots,
            workers=workers,
            batch_size=batch_size,
            registry_dir=registry_dir,
        )
        warm = run_streaming_pipeline(
            profile,
            n_shots=n_shots,
            workers=workers,
            batch_size=batch_size,
            registry_dir=registry_dir,
        )
    return cold, warm


def _serve_warm_vs_cold(profile, shots=2000, repeat=2, batch_size=64):
    """One warm ReadoutService session vs ``repeat`` cold run_pipeline calls.

    Cold calls keep no registry, so each pays the full calibration fit;
    the warm session fits once during ``warm()`` and then serves every
    run from resident state. Fit calls are counted by instrumenting
    ``MLRDiscriminator.fit`` (in-process, single-feedline) so the
    zero-refit claim is measured, not assumed.
    """
    import time

    from repro.api import run_pipeline
    from repro.discriminators.mlr import MLRDiscriminator
    from repro.serve import BatchingSpec, ReadoutService, ServeSpec, TrafficSpec

    fit_calls = []
    original_fit = MLRDiscriminator.fit

    def counting_fit(self, corpus, indices):
        fit_calls.append(1)
        return original_fit(self, corpus, indices)

    MLRDiscriminator.fit = counting_fit
    try:
        cold_walls = []
        for _ in range(repeat):
            start = time.perf_counter()
            run_pipeline(profile, shots=shots, batch_size=batch_size)
            cold_walls.append(time.perf_counter() - start)
        cold_fits = len(fit_calls)

        fit_calls.clear()
        spec = ServeSpec(
            traffic=TrafficSpec(shots=shots),
            batching=BatchingSpec(batch_size=batch_size),
        )
        with ReadoutService(spec, profile=profile) as service:
            reports = [service.run() for _ in range(repeat)]
            stats = service.stats
        refits_during_runs = len(fit_calls) - stats.cold_fits
    finally:
        MLRDiscriminator.fit = original_fit

    return {
        "repeat": repeat,
        "n_shots_per_run": shots,
        "cold": {
            "run_walls_seconds": cold_walls,
            "fits": cold_fits,
            "shots_per_second": shots * repeat / sum(cold_walls),
        },
        "warm": {
            "warm_seconds": stats.warm_seconds,
            "run_walls_seconds": [run.wall_seconds for run in stats.runs],
            "fits_during_warm": stats.cold_fits,
            "refits_during_runs": refits_during_runs,
            "shots_per_second": stats.shots_per_second,
            "second_run_calibration_cached": (
                reports[-1].calibration_cached if repeat > 1 else None
            ),
        },
    }


def _cluster_sweep(
    profile,
    feedline_counts=(1, 2, 3),
    executors=("serial", "thread", "process"),
    shots=2000,
    qubits_per_feedline=5,
    adaptive=True,
    rounds=3,
):
    """Feedline-count x executor grid over one warm shared registry.

    The largest feedline count is primed first (serial, cold) so every
    measured cell serves calibration from the registry; cells then time
    pure streaming + shard dispatch over one persistent warm runner per
    executor, keeping the best of ``rounds`` repeats. Rounds alternate
    across executors (thread r0, process r0, thread r1, ...) so slow
    drift on the host — page-cache warming, thermal or neighbor load —
    lands on every backend equally instead of biasing whichever cell
    happens to run last.
    """
    from repro.pipeline import MultiFeedlineRunner
    from repro.pipeline.cluster import available_cpus
    from repro.physics.device import multi_feedline_chips

    cpus = available_cpus()
    config = PipelineConfig(workers=1, adaptive_batching=adaptive)
    chips = multi_feedline_chips(
        max(feedline_counts), n_qubits=qubits_per_feedline
    )
    results = {}
    with tempfile.TemporaryDirectory() as registry_dir:
        run_multi_feedline_pipeline(
            profile,
            64,
            chips,
            executor="serial",
            config=config,
            registry_dir=registry_dir,
        )
        for n_feedlines in feedline_counts:
            runners = {
                executor: MultiFeedlineRunner(
                    chips[:n_feedlines],
                    profile,
                    executor=executor,
                    config=config,
                    registry_dir=registry_dir,
                )
                for executor in executors
            }
            try:
                reports = {executor: [] for executor in executors}
                for _ in range(rounds):
                    for executor in executors:
                        reports[executor].append(
                            runners[executor].run(shots)
                        )
            finally:
                for runner in runners.values():
                    runner.close()
            for executor in executors:
                best = max(
                    reports[executor], key=lambda r: r.shots_per_second
                )
                results[f"feedlines{n_feedlines}_{executor}"] = {
                    "n_feedlines": n_feedlines,
                    "executor": executor,
                    "cpus": cpus,
                    "n_shots": best.n_shots,
                    "shots_per_second": best.shots_per_second,
                    "wall_seconds": best.wall_seconds,
                    "accuracy": best.accuracy,
                    "worst_p99_ms": best.worst_p99_ms(),
                    "budget_verdicts": best.budget_verdicts(),
                }
    return results


def _zero_copy(profile, shots=2000, batch_size=256, rounds=3):
    """Fused zero-copy serving vs the legacy per-channel chain, replayed.

    Traffic is pre-generated once and replayed through shared memory
    (:meth:`MultiFeedlineRunner.run_replay`), so the timed window
    contains discrimination only — the honest serving number, with the
    simulator out of the loop. Both engines replay the *same* corpus
    through the same warm registry artifact; their assignment counts
    must match exactly, and the fused engine must not be slower.
    """
    from repro.data import generate_corpus
    from repro.physics.device import default_five_qubit_chip
    from repro.pipeline import MultiFeedlineRunner

    chip = default_five_qubit_chip()
    corpus = generate_corpus(
        chip,
        shots_per_state=max(1, shots // chip.n_levels**chip.n_qubits),
        seed=profile.seed + 7,
    )
    results = {}
    with tempfile.TemporaryDirectory() as registry_dir:
        for engine in ("legacy", "fused"):
            with MultiFeedlineRunner(
                [chip],
                profile,
                executor="serial",
                config=PipelineConfig(batch_size=batch_size, engine=engine),
                registry_dir=registry_dir,
            ) as runner:
                runner.prefit()  # cold fit lands before any timed replay
                best = None
                for _ in range(rounds):
                    report = runner.run_replay([corpus])
                    if (
                        best is None
                        or report.shots_per_second > best.shots_per_second
                    ):
                        best = report
            results[engine] = best

    def digest(report):
        (feedline,) = report.feedline_reports.values()
        return {
            "shots_per_second": report.shots_per_second,
            "wall_seconds": report.wall_seconds,
            "accuracy": report.accuracy,
            "assignment_counts": feedline.assignment_counts,
        }

    legacy, fused = digest(results["legacy"]), digest(results["fused"])
    return {
        "n_shots": corpus.n_traces,
        "batch_size": batch_size,
        "rounds": rounds,
        "legacy": legacy,
        "fused": fused,
        "counts_identical": (
            legacy["assignment_counts"] == fused["assignment_counts"]
        ),
        "speedup": (
            fused["shots_per_second"] / legacy["shots_per_second"]
        ),
    }


def test_pipeline_zero_copy(benchmark, profile):
    result = run_once(benchmark, _zero_copy, profile, shots=1000, rounds=2)

    # Same traffic, same artifact: the fused engine must be a pure
    # optimization — identical assignments, never slower.
    assert result["counts_identical"] is True
    assert result["fused"]["accuracy"] == result["legacy"]["accuracy"]
    assert (
        result["fused"]["shots_per_second"]
        >= result["legacy"]["shots_per_second"]
    )

    record_bench_result("pipeline_zero_copy", result)


def test_pipeline_throughput(benchmark, profile):
    cold, warm = run_once(benchmark, _stream_cold_and_warm, profile)
    print("\n" + warm.format_table())

    assert cold.calibration_cached is False
    assert warm.calibration_cached is True
    assert warm.n_shots == 2000
    assert warm.shots_per_second > 0
    for stage in ("demod", "matched_filter", "discriminate", "sink"):
        summary = warm.stage_summaries[stage]
        assert summary["p99_ms"] >= summary["p50_ms"] >= 0.0
    # A software runtime cannot beat the 5-cycle FPGA datapath.
    assert warm.budget is not None and warm.budget.slowdown > 1.0
    # Warm and cold runs stream the same traffic through the same model.
    assert warm.accuracy == cold.accuracy

    record_bench_result(
        "pipeline_throughput",
        {"cold": cold.to_dict(), "warm": warm.to_dict()},
    )


def test_pipeline_serve_warm(benchmark, profile):
    result = run_once(benchmark, _serve_warm_vs_cold, profile, repeat=2)

    # The warmed session must never refit: the same traffic served twice
    # performs zero fits after warm-up...
    assert result["warm"]["fits_during_warm"] == 1
    assert result["warm"]["refits_during_runs"] == 0
    assert result["warm"]["second_run_calibration_cached"] is True
    # ...and amortizing calibration must beat paying it per call.
    assert (
        result["warm"]["shots_per_second"]
        > result["cold"]["shots_per_second"]
    )
    assert result["cold"]["fits"] == result["repeat"]

    record_bench_result("pipeline_serve_warm", result)


def test_pipeline_cluster_sweep(benchmark, profile):
    # Two-qubit feedlines keep the pytest path fast; the standalone run
    # records the full five-qubit sweep. Fixed-size batching here: the
    # accuracy-equality assertion below needs identical batch
    # partitioning per executor (adaptive sizes are timing-dependent).
    sweep = run_once(
        benchmark,
        _cluster_sweep,
        profile,
        feedline_counts=(1, 2),
        shots=600,
        qubits_per_feedline=2,
        adaptive=False,
    )
    assert set(sweep) == {
        f"feedlines{n}_{ex}"
        for n in (1, 2)
        for ex in ("serial", "thread", "process")
    }
    for cell in sweep.values():
        assert cell["n_shots"] == 600 * cell["n_feedlines"]
        assert cell["shots_per_second"] > 0
        assert len(cell["budget_verdicts"]) == cell["n_feedlines"]
    # Identical seeded traffic: every executor discriminates the same
    # shots to the same labels at a given feedline count.
    for n in (1, 2):
        accs = {sweep[f"feedlines{n}_{ex}"]["accuracy"]
                for ex in ("serial", "thread", "process")}
        assert len(accs) == 1
    record_bench_result("pipeline_cluster_sweep", sweep)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--shots", type=int, default=2000)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--batch-size", type=int, default=64)
    parser.add_argument("--profile", default="quick")
    parser.add_argument(
        "--feedlines",
        type=int,
        nargs="+",
        default=[1, 2, 3],
        metavar="N",
        help="feedline counts for the cluster sweep (default: 1 2 3)",
    )
    parser.add_argument(
        "--qubits-per-feedline",
        type=int,
        default=5,
        help="qubits per generated feedline in the sweep (default: 5)",
    )
    parser.add_argument(
        "--skip-sweep",
        action="store_true",
        help="only run the single-feedline cold/warm bench",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write cold/warm reports as JSON (e.g. BENCH_pipeline.json)",
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=2,
        help="runs per arm of the warm-service-vs-cold bench (default: 2)",
    )
    args = parser.parse_args(argv)
    if args.repeat < 1:
        parser.error(f"--repeat must be >= 1, got {args.repeat}")

    profile = get_profile(args.profile)
    cold, warm = _stream_cold_and_warm(
        profile,
        n_shots=args.shots,
        workers=args.workers,
        batch_size=args.batch_size,
    )
    print(cold.format_table())
    print()
    print(warm.format_table())
    payload = {
        "pipeline_throughput": {
            "cold": cold.to_dict(),
            "warm": warm.to_dict(),
        }
    }
    serve = _serve_warm_vs_cold(
        profile,
        shots=args.shots,
        repeat=args.repeat,
        batch_size=args.batch_size,
    )
    zero_copy = _zero_copy(
        profile, shots=args.shots, batch_size=args.batch_size * 4
    )
    payload["pipeline_zero_copy"] = zero_copy
    print("\nzero-copy replay (fused vs legacy engine, shots/s):")
    print(f"  legacy per-channel      "
          f"{zero_copy['legacy']['shots_per_second']:>10.0f}")
    print(f"  fused zero-copy         "
          f"{zero_copy['fused']['shots_per_second']:>10.0f}  "
          f"({zero_copy['speedup']:.1f}x, counts identical: "
          f"{zero_copy['counts_identical']})")
    payload["pipeline_serve_warm"] = serve
    print("\nwarm service vs cold calls (aggregate shots/s):")
    print(f"  cold run_pipeline x{serve['repeat']}  "
          f"{serve['cold']['shots_per_second']:>10.0f}")
    print(f"  warm ReadoutService     "
          f"{serve['warm']['shots_per_second']:>10.0f}  "
          f"(warm-up {serve['warm']['warm_seconds']:.1f} s, "
          f"{serve['warm']['refits_during_runs']} refits)")
    if not args.skip_sweep:
        sweep = _cluster_sweep(
            profile,
            feedline_counts=tuple(args.feedlines),
            shots=args.shots,
            qubits_per_feedline=args.qubits_per_feedline,
        )
        payload["pipeline_cluster_sweep"] = sweep
        print("\nfeedlines x executor (global shots/s):")
        for name, cell in sweep.items():
            print(f"  {name:24s} {cell['shots_per_second']:>10.0f}")
    if args.json is not None:
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"\nreport written to {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
