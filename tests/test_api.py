"""Tests for repro.api: registry, result contract, suite runs, plugins."""

from __future__ import annotations

import json
import pkgutil

import numpy as np
import pytest

import repro.experiments
from repro.api import (
    ExperimentResult,
    ExperimentSpec,
    discover,
    experiments,
    jsonify,
    run,
    run_suite,
)
from repro.config import QUICK
from repro.discriminators import registry as disc_registry
from repro.discriminators.fnn_baseline import FNNBaseline
from repro.discriminators.mlr import MLRDiscriminator
from repro.exceptions import ConfigurationError

EXPECTED_NAMES = {
    "table1", "table2", "table4", "table5", "table6",
    "fig1c", "fig1d", "fig3", "fig5a", "fig5b",
    "sec3", "sec7b", "sec7d", "headline", "scaling", "fnn_scaling",
}


class TestExperimentRegistry:
    def test_discovery_finds_all_experiments(self):
        assert set(discover()) == EXPECTED_NAMES

    def test_every_module_registers_exactly_once(self):
        discover()
        by_module: dict[str, int] = {}
        for spec in experiments.values():
            by_module[spec.module] = by_module.get(spec.module, 0) + 1
        support = {"common", "report"}
        for info in pkgutil.iter_modules(repro.experiments.__path__):
            if info.name.startswith("_") or info.name in support:
                continue
            module = f"repro.experiments.{info.name}"
            assert by_module.get(module) == 1, module

    def test_duplicate_name_rejected(self):
        discover()
        with pytest.raises(ConfigurationError, match="already registered"):
            experiments.register(
                ExperimentSpec(name="table1", runner=lambda profile: None)
            )

    def test_every_spec_has_tags_and_paper_ref(self):
        discover()
        for spec in experiments.values():
            assert spec.tags, spec.name
            assert spec.paper_ref, spec.name
            assert spec.description, spec.name

    def test_select_by_tag(self):
        discover()
        names = {s.name for s in experiments.select(["fpga"])}
        assert names == {"fig1d", "fig5a", "sec7d", "headline"}

    def test_select_mixes_names_tags_and_dedupes(self):
        discover()
        specs = experiments.select(["fig1d", "fpga", "sec7b"])
        names = [s.name for s in specs]
        assert sorted(names) == ["fig1d", "fig5a", "headline", "sec7b", "sec7d"]
        assert len(names) == len(set(names))

    def test_select_all(self):
        discover()
        assert {s.name for s in experiments.select("all")} == EXPECTED_NAMES

    def test_select_unknown_raises_with_known_names(self):
        discover()
        with pytest.raises(ConfigurationError, match="table1"):
            experiments.select(["bogus"])

    def test_runner_exports_follow_registry(self):
        # __all__ is derived, and the dead generator-splat entry is gone.
        assert "run_table1" in repro.experiments.__all__
        assert repro.experiments.run_table1 is experiments["table1"].runner


class TestJsonify:
    def test_numpy_and_tuple_keys(self):
        payload = jsonify(
            {
                (2, 3): np.int64(7),
                "arr": np.arange(3),
                "f": np.float32(0.5),
                "t": (1, 2),
            }
        )
        assert payload == {"2,3": 7, "arr": [0, 1, 2], "f": 0.5, "t": [1, 2]}
        json.dumps(payload)

    def test_complex_arrays(self):
        payload = jsonify(np.array([1 + 2j]))
        assert payload == {"real": [1.0], "imag": [2.0]}


def _dummy_results():
    """One hand-built instance of every result class (no training)."""
    from repro.experiments.fig1c import Fig1cResult
    from repro.experiments.fig1d import Fig1dResult
    from repro.experiments.fig3 import Fig3Result
    from repro.experiments.fig5a import Fig5aResult
    from repro.experiments.fig5b import Fig5bResult
    from repro.experiments.fnn_scaling import FNNScalingResult
    from repro.experiments.headline import HeadlineResult
    from repro.experiments.scaling import ScalingResult
    from repro.experiments.sec3 import Sec3Result
    from repro.experiments.sec7b import Sec7bResult
    from repro.experiments.sec7d import Sec7dResult
    from repro.experiments.table1 import Table1Result
    from repro.experiments.table2 import Table2Result
    from repro.experiments.table4 import Table4Result
    from repro.experiments.table5 import Table5Result
    from repro.experiments.table6 import Table6Result

    fid_row = {
        "fidelities": (0.9, 0.9, 0.9, 0.9, 0.9),
        "f5q": 0.9,
        "n_parameters": 10,
    }
    spec_row = {
        "error_pct": 10.0,
        "speed": "Fast",
        "speculation_accuracy": 0.91,
        "leakage_population": 1e-3,
    }
    return {
        "table1": Table1Result(
            rows=[
                {
                    "design": design,
                    "accuracy": 0.95,
                    "leakage_population": 3e-3,
                    "true_positive_rate": 0.5,
                    "false_positive_rate": 0.1,
                }
                for design in ("ERASER", "ERASER+M")
            ]
        ),
        "table2": Table2Result(
            rows=[
                {"design": d, **fid_row} for d in ("fnn", "herqules")
            ]
        ),
        "table4": Table4Result(
            rows=[{"design": d, **fid_row} for d in ("fnn", "ours")]
        ),
        "table5": Table5Result(
            fidelities={
                q: {"lda": 0.9, "qda": 0.91, "nn": 0.92, "ours": 0.93}
                for q in (2, 3)
            }
        ),
        "table6": Table6Result(
            rows=[{"design": d, **spec_row} for d in ("lda", "ours")]
        ),
        "fig1c": Fig1cResult(inaccuracy={"ours": (0.1,) * 5}),
        "fig1d": Fig1dResult(
            utilization={"herqules": 0.3, "fnn": 4.0, "ours": 0.07}
        ),
        "fig3": Fig3Result(
            qubit=3,
            mtv=np.zeros((4, 2)),
            cluster_levels=np.zeros(4, dtype=np.int64),
            cluster_sizes=(2, 1, 1),
            detection_precision=1.0,
            detection_recall=0.9,
            state_mean_traces=np.zeros((3, 5), dtype=np.complex128),
            excitation_mean_traces={
                (0, 1): None,
                (0, 2): np.zeros(5, dtype=np.complex128),
                (1, 2): None,
            },
        ),
        "fig5a": Fig5aResult(
            resources={
                "herqules": {"lut": 4.0, "ff": 5.0, "bram": 2.0, "dsp": 2.0},
                "ours": {"lut": 1.0, "ff": 1.0, "bram": 1.0, "dsp": 1.0},
            }
        ),
        "fig5b": Fig5bResult(
            durations_ns=(500, 1000),
            mean_accuracy=(0.8, 0.9),
            truncated_accuracy=(0.7, 0.9),
        ),
        "headline": HeadlineResult(
            parameters={"fnn": 100, "herqules": 10, "ours": 1},
            luts={"fnn": 60.0, "herqules": 15.0, "ours": 1.0},
        ),
        "sec3": Sec3Result(
            n_cnots=(1, 2),
            leaked_control_population=(0.01, 0.02),
            normal_control_population=(0.001, 0.002),
            single_gate_transfer=0.017,
            growth_ratio_at_12=3.1,
        ),
        "sec7b": Sec7bResult(
            baseline_cycle_ns=1176.0, reduced_cycle_ns=976.0, reduction=0.17
        ),
        "sec7d": Sec7dResult(
            total_parameters=6505, power_mw=1.561, latency_cycles=5
        ),
        "scaling": ScalingResult(
            qubit_range=(2, 3),
            level_range=(3,),
            parameters={
                "fnn": {(2, 3): 100, (3, 3): 300},
                "herqules": {(2, 3): 50, (3, 3): 200},
                "ours": {(2, 3): 10, (3, 3): 15},
            },
        ),
        "fnn_scaling": FNNScalingResult(
            shots_per_state=(8, 16), fnn_f5q=(0.5, 0.6), ours_f5q=(0.8, 0.8)
        ),
    }


class TestResultContract:
    def test_every_experiment_has_a_result_instance(self):
        assert set(_dummy_results()) == EXPECTED_NAMES

    @pytest.mark.parametrize("name", sorted(EXPECTED_NAMES))
    def test_to_dict_json_round_trip(self, name):
        result = _dummy_results()[name]
        assert isinstance(result, ExperimentResult)
        result._bind(name, QUICK)
        payload = result.to_dict()
        assert set(payload) == {
            "name", "profile", "seed", "measured", "paper", "deviations",
        }
        assert payload["name"] == name
        assert payload["profile"] == "quick"
        assert payload["seed"] == QUICK.seed
        assert payload["measured"]
        round_tripped = json.loads(json.dumps(payload))
        assert round_tripped == payload
        # to_json agrees with to_dict.
        assert json.loads(result.to_json()) == json.loads(
            json.dumps(payload, sort_keys=True)
        )

    @pytest.mark.parametrize("name", sorted(EXPECTED_NAMES))
    def test_format_table_still_works(self, name):
        assert _dummy_results()[name].format_table()

    def test_deviations_align_measured_and_paper(self):
        result = _dummy_results()["table1"]
        devs = result.deviations()
        assert "ERASER.accuracy" in devs
        entry = devs["ERASER.accuracy"]
        assert entry["paper"] == 0.957
        assert entry["measured"] == 0.95
        assert entry["delta"] == pytest.approx(-0.007)

    def test_deviations_compare_sequences_elementwise(self):
        devs = _dummy_results()["table2"].deviations()
        assert "fnn.fidelities.1" in devs

    def test_deviations_skip_unmatched_and_non_numeric(self):
        devs = _dummy_results()["table6"].deviations()
        # Only the lda/ours rows exist in this dummy; qda/fnn are skipped,
        # and the string "speed" never produces an entry.
        assert any(k.startswith("lda.") for k in devs)
        assert not any(k.startswith("qda.") for k in devs)
        assert not any(k.endswith(".speed") for k in devs)

    def test_to_json_writes_file(self, tmp_path):
        path = tmp_path / "r.json"
        _dummy_results()["sec7b"].to_json(path)
        assert json.loads(path.read_text())["measured"]["reduction"] == 0.17

    def test_run_binds_name_and_profile(self):
        result = run("sec7b", profile="quick", seed=123)
        assert result.name == "sec7b"
        assert result.profile_name == "quick"
        assert result.profile_seed == 123

    def test_run_unknown_experiment_raises(self):
        with pytest.raises(ConfigurationError, match="unknown experiment"):
            run("nope")


class TestRunSuite:
    def test_parallel_matches_serial_bit_for_bit(self):
        serial = run_suite(tags=["fpga"], workers=1)
        parallel = run_suite(tags=["fpga"], workers=2)
        assert set(serial.results) == {"fig1d", "fig5a", "sec7d", "headline"}
        a = json.dumps(serial.to_dict(include_timings=False), sort_keys=True)
        b = json.dumps(parallel.to_dict(include_timings=False), sort_keys=True)
        assert a == b

    def test_reports_per_experiment_wall_time(self):
        suite = run_suite(["sec7b", "sec7d"], workers=2)
        assert set(suite.results) == {"sec7b", "sec7d"}
        assert all(e.seconds >= 0.0 for e in suite.entries)
        assert suite.total_seconds >= 0.0
        assert "total wall time" in suite.format_table()

    def test_positional_selector_string(self):
        suite = run_suite("sec7b")
        assert set(suite.results) == {"sec7b"}

    def test_seed_override_propagates(self):
        suite = run_suite(["sec7b"], seed=99)
        assert suite.seed == 99
        assert suite.results["sec7b"].profile_seed == 99

    def test_rejects_bad_workers(self):
        with pytest.raises(ConfigurationError, match="workers"):
            run_suite(["sec7b"], workers=0)

    def test_on_result_streams_entries_as_they_complete(self):
        streamed = []
        suite = run_suite(
            ["sec7b", "sec7d"], on_result=lambda e: streamed.append(e.name)
        )
        assert sorted(streamed) == ["sec7b", "sec7d"]
        assert [e.name for e in suite.entries] == ["sec7b", "sec7d"]


class TestDiscriminatorRegistry:
    def test_registered_design_names(self):
        assert set(disc_registry.names()) >= {"ours", "herqules", "fnn", "hmm"}

    def test_alias_resolves_to_canonical(self):
        assert disc_registry.get("mlr").cls is MLRDiscriminator
        assert disc_registry.get("mlr").name == "ours"

    def test_build_sizes_from_profile(self):
        ours = disc_registry.build("ours", QUICK)
        assert isinstance(ours, MLRDiscriminator)
        assert ours.epochs == QUICK.nn_epochs
        assert ours.learning_rate == disc_registry.NN_LEARNING_RATE
        fnn = disc_registry.build("fnn", QUICK)
        assert isinstance(fnn, FNNBaseline)
        assert fnn.epochs == QUICK.fnn_epochs

    def test_unknown_design_raises(self):
        with pytest.raises(ConfigurationError, match="unknown discriminator"):
            disc_registry.build("nope", QUICK)

    def test_artifact_classes_tracked(self):
        assert disc_registry.artifact_class("MLRDiscriminator") is MLRDiscriminator
        assert disc_registry.artifact_class("NoSuchClass") is None

    def test_get_trained_uses_registry_names(self):
        # The experiments layer resolves designs through the registry, so
        # an unknown design surfaces the registry's error.
        from repro.experiments.common import get_trained

        with pytest.raises(ConfigurationError, match="unknown discriminator"):
            get_trained(QUICK, "not-a-design")


class TestRunPipelineApi:
    """repro.api.run_pipeline — the streaming runtime as a library call."""

    @staticmethod
    def _tiny_profile():
        from repro.config import Profile

        return Profile(
            name="tiny", shots_per_state=10, calibration_shots=100,
            nn_epochs=8, fnn_epochs=2, batch_size=64, qec_shots=10,
            qudit_shots=10, spectral_max_points=100, seed=611,
        )

    def test_single_feedline_returns_pipeline_report(self):
        from repro.api import run_pipeline
        from repro.pipeline import PipelineReport

        report = run_pipeline(
            self._tiny_profile(), shots=40, batch_size=20, chunk_size=20,
            qubits_per_feedline=2,
        )
        assert isinstance(report, PipelineReport)
        assert report.n_shots == 40

    def test_multi_feedline_returns_cluster_report(self):
        from repro.api import run_pipeline
        from repro.pipeline import ClusterReport

        report = run_pipeline(
            self._tiny_profile(), shots=30, feedlines=2, executor="serial",
            batch_size=15, chunk_size=15, qubits_per_feedline=2,
            adaptive_batching=True,
        )
        assert isinstance(report, ClusterReport)
        assert report.n_feedlines == 2
        assert report.n_shots == 60

    def test_rejects_bad_feedline_count(self):
        from repro.api import run_pipeline
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            run_pipeline(self._tiny_profile(), feedlines=0)
