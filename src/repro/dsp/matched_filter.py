"""Matched filters for state discrimination (Sec V.B).

The paper defines the kernel for two trace classes as the mean difference
normalized by the variance difference,

    K(t) = (mu_1(t) - mu_0(t)) / (sigma_1^2(t) - sigma_0^2(t)),

and applies it by dot product, producing one likelihood score per trace.
The variance *difference* is singular whenever the two classes are equally
noisy (exactly the case for additive amplifier noise), so this module also
provides the standard variance-*sum* normalization and makes the choice an
explicit parameter:

- ``variance_mode="sum"`` (default): ``sigma_0^2 + sigma_1^2`` — the
  classic SNR-optimal filter for Gaussian noise.
- ``variance_mode="difference"``: the paper's formula, guarded by an
  epsilon floor. Benchmarked against "sum" in the MF ablation.
- ``variance_mode="unit"``: plain mean-difference (boxcar-weighted) filter.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError, DataError, ShapeError

__all__ = ["matched_filter_kernel", "apply_matched_filter", "MatchedFilterBank"]

_VARIANCE_MODES = ("sum", "difference", "unit")


def _class_stats(traces: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-time mean (complex) and total variance (real) of a trace class."""
    traces = np.asarray(traces)
    if traces.ndim != 2:
        raise ShapeError(f"traces must be 2-D, got {traces.shape}")
    if traces.shape[0] < 2:
        raise DataError("need at least 2 traces per class for variance")
    mean = traces.mean(axis=0)
    centered = traces - mean
    variance = np.mean(np.abs(centered) ** 2, axis=0)
    return mean, variance


def matched_filter_kernel(
    traces_a: np.ndarray,
    traces_b: np.ndarray,
    variance_mode: str = "sum",
    epsilon: float = 1e-9,
) -> np.ndarray:
    """Build a complex kernel separating class ``b`` (high) from ``a`` (low).

    Parameters
    ----------
    traces_a, traces_b:
        Complex trace arrays (n_shots, trace_len) for the two classes.
    variance_mode:
        Normalization of the mean difference; see module docstring.
    epsilon:
        Floor added to the denominator magnitude (relative to its median)
        to keep the paper's difference mode finite.
    """
    if variance_mode not in _VARIANCE_MODES:
        raise ConfigurationError(
            f"variance_mode must be one of {_VARIANCE_MODES}, got {variance_mode!r}"
        )
    mean_a, var_a = _class_stats(traces_a)
    mean_b, var_b = _class_stats(traces_b)
    if mean_a.shape != mean_b.shape:
        raise ShapeError("classes have different trace lengths")

    diff = mean_b - mean_a
    if variance_mode == "unit":
        return diff
    if variance_mode == "sum":
        denom = var_a + var_b
    else:
        denom = var_b - var_a
    scale = np.median(np.abs(denom))
    floor = epsilon * max(scale, 1e-300)
    guarded = np.sign(denom) * np.maximum(np.abs(denom), floor)
    guarded = np.where(guarded == 0.0, floor, guarded)
    return diff / guarded


def apply_matched_filter(kernel: np.ndarray, traces: np.ndarray) -> np.ndarray:
    """Score traces against a kernel: ``Re <K, z> = Re sum_t conj(K) z``.

    Higher scores mean "more like class b". Accepts a single trace or a
    batch; returns float scores.
    """
    kernel = np.asarray(kernel)
    traces = np.asarray(traces)
    if traces.shape[-1] != kernel.shape[0]:
        raise ShapeError(
            f"trace length {traces.shape[-1]} != kernel length {kernel.shape[0]}"
        )
    return np.real(traces @ np.conj(kernel))


@dataclass(frozen=True)
class MatchedFilterBank:
    """An ordered set of named kernels applied together.

    The paper's per-qubit filter bank is nine kernels (three QMFs, three
    RMFs, three EMFs); :meth:`transform` turns a batch of demodulated
    traces into the (n_shots, n_filters) score block that feeds the NN.
    """

    names: tuple[str, ...]
    kernels: np.ndarray  # (n_filters, trace_len) complex

    def __post_init__(self) -> None:
        kernels = np.asarray(self.kernels)
        if kernels.ndim != 2:
            raise ShapeError(f"kernels must be 2-D, got {kernels.shape}")
        if len(self.names) != kernels.shape[0]:
            raise ShapeError(
                f"{len(self.names)} names for {kernels.shape[0]} kernels"
            )
        object.__setattr__(self, "names", tuple(self.names))
        object.__setattr__(self, "kernels", kernels)

    @property
    def n_filters(self) -> int:
        return self.kernels.shape[0]

    @property
    def trace_len(self) -> int:
        return self.kernels.shape[1]

    def transform(self, traces: np.ndarray) -> np.ndarray:
        """Apply every kernel; returns (n_shots, n_filters) scores."""
        traces = np.atleast_2d(np.asarray(traces))
        return np.real(traces @ np.conj(self.kernels).T)

    def truncated(self, trace_len: int) -> "MatchedFilterBank":
        """Bank with kernels cut to a shorter readout window."""
        if not 1 <= trace_len <= self.trace_len:
            raise DataError(
                f"trace_len must be in [1, {self.trace_len}], got {trace_len}"
            )
        return MatchedFilterBank(self.names, self.kernels[:, :trace_len].copy())
