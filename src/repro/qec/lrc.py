"""Leakage Reduction Circuit (LRC) model.

LRCs return a leaked qubit to the computational subspace (via swap/reset
style gadgets). They are imperfect: they fail to de-leak with some
probability, and applying one to a qubit that was *not* leaked can itself
induce leakage and extra errors — the reason ERASER speculates instead of
applying LRCs everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["LRCModel"]


@dataclass(frozen=True)
class LRCModel:
    """Stochastic behavior of one LRC application.

    Parameters
    ----------
    success_prob:
        Probability a leaked qubit is returned to the computational
        subspace.
    induce_prob:
        Probability that applying the LRC to a *non-leaked* qubit leaks it.
    """

    success_prob: float = 0.98
    induce_prob: float = 0.002

    def __post_init__(self) -> None:
        for name in ("success_prob", "induce_prob"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {value}")

    def apply(
        self, leaked: np.ndarray, targets: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Apply LRCs to ``targets`` of a boolean leakage vector.

        Returns the updated leakage vector (a copy).
        """
        leaked = np.asarray(leaked, dtype=bool).copy()
        targets = np.asarray(targets, dtype=np.int64)
        if targets.size == 0:
            return leaked
        u = rng.random(targets.size)
        was_leaked = leaked[targets]
        # Leaked targets de-leak with success_prob; clean targets leak
        # with induce_prob.
        leaked_targets = targets[was_leaked]
        leaked[leaked_targets[u[was_leaked] < self.success_prob]] = False
        clean_targets = targets[~was_leaked]
        leaked[clean_targets[u[~was_leaked] < self.induce_prob]] = True
        return leaked
