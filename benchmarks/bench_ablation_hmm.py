"""Ablation bench: HMM discriminator (related-work baseline) vs OURS.

The paper cites HMM-based discrimination (Varbanov et al.) among prior
approaches. Our physics-informed HMM is strong on the simulator — its
generative model matches the true dynamics exactly — but it is per-qubit
(no crosstalk correction) and its forward pass is far too slow for inline
FPGA use, unlike the paper's 5-cycle feedforward pipeline.
"""

from repro.discriminators.hmm import HMMDiscriminator
from repro.experiments.common import get_readout_bundle, get_trained
from repro.ml.metrics import geometric_mean_fidelity, per_qubit_fidelity


def test_ablation_hmm_baseline(benchmark, profile):
    bundle = get_readout_bundle(profile)

    def run():
        hmm = HMMDiscriminator(seed=profile.seed + 100)
        hmm.fit(bundle.corpus, bundle.train_idx)
        pred = hmm.predict(bundle.corpus, bundle.test_idx)
        fid = per_qubit_fidelity(
            bundle.test_labels, pred,
            bundle.corpus.n_qubits, bundle.corpus.n_levels,
        )
        return geometric_mean_fidelity(fid)

    hmm_f5q = benchmark.pedantic(run, rounds=1, iterations=1)
    ours = get_trained(profile, "ours")
    print(f"\nHMM baseline: F5Q={hmm_f5q:.4f} vs OURS F5Q={ours.f5q:.4f}")
    # The HMM is a legitimate high-fidelity baseline on synthetic data...
    assert hmm_f5q > 0.85
    # ...but OURS stays within reach despite being a 5-cycle pipeline.
    assert ours.f5q > hmm_f5q - 0.03
