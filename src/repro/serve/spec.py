"""Declarative serving configuration: one spec, every front end.

The streaming runtime grew three parallel configuration surfaces — the 17
loose kwargs of :func:`repro.api.run_pipeline`, the runtime knobs of
:class:`repro.pipeline.PipelineConfig`, and the ``repro pipeline`` CLI
flags. :class:`ServeSpec` replaces that duplication with one frozen,
composable source of truth:

- :class:`TrafficSpec` — what is streamed (shots per run, source
  chunking, traffic seed) and which instrument backend it comes from
  (``simulator``/``dummy``/``replay``/``socket``, with record/replay
  corpus paths).
- :class:`ClusterSpec` — where it runs (feedlines, shard executor and
  workers, channel workers, qubits per feedline).
- :class:`BatchingSpec` — how it is batched (micro-batch size,
  backpressure, adaptive sizing).
- :class:`CalibrationSpec` — how discriminators are calibrated (profile,
  design, registry root, seed override).
- :class:`DriftSpec` — simulated device drift injected across the
  session (readout-tone detuning, T1/contrast decay per kilo-shot).
- :class:`RecalibrationSpec` — the drift response: alarm threshold on
  the online drift score, recalibration shot budget, cooldown, and cap.

Specs serialize losslessly: ``spec == ServeSpec.from_dict(spec.to_dict())``
holds for every valid spec, and :meth:`ServeSpec.from_file` /
:meth:`ServeSpec.to_file` round-trip through JSON. Validation is
*exhaustive*: a spec with several bad fields raises one
:class:`~repro.exceptions.ConfigurationError` naming all of them (section
qualified, e.g. ``traffic.shots``), so a config file is fixed in one edit
pass instead of one error at a time.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import TYPE_CHECKING, Any, Mapping

from repro.config import Profile, get_profile
from repro.exceptions import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only; the pipeline package
    # is imported lazily (see _Section._problems implementations) so the
    # spec layer stays importable without pulling the full runtime in.
    from repro.pipeline.runner import PipelineConfig

__all__ = [
    "TrafficSpec",
    "ClusterSpec",
    "BatchingSpec",
    "CalibrationSpec",
    "DriftSpec",
    "RecalibrationSpec",
    "ServeSpec",
]


def _check_int(
    problems: list[str],
    name: str,
    value: Any,
    minimum: int | None = None,
    optional: bool = False,
) -> None:
    """Append a problem unless ``value`` is an int within bounds."""
    if value is None and optional:
        return
    if isinstance(value, bool) or not isinstance(value, int):
        problems.append(f"{name} must be an integer, got {value!r}")
        return
    if minimum is not None and value < minimum:
        problems.append(f"{name} must be >= {minimum}, got {value}")


def _check_number(
    problems: list[str],
    name: str,
    value: Any,
    positive: bool = False,
    optional: bool = False,
) -> None:
    """Append a problem unless ``value`` is a (positive) real number."""
    if value is None and optional:
        return
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        problems.append(f"{name} must be a number, got {value!r}")
        return
    if positive and value <= 0:
        problems.append(f"{name} must be positive, got {value}")


def _check_str(
    problems: list[str], name: str, value: Any, optional: bool = False
) -> None:
    """Append a problem unless ``value`` is a non-empty string."""
    if value is None and optional:
        return
    if not isinstance(value, str) or not value:
        problems.append(f"{name} must be a non-empty string, got {value!r}")


def _check_bool(problems: list[str], name: str, value: Any) -> None:
    if not isinstance(value, bool):
        problems.append(f"{name} must be a boolean, got {value!r}")


@dataclass(frozen=True)
class _Section:
    """Shared spec-section behavior: exhaustive validation + dict I/O."""

    def _problems(self) -> list[str]:
        """Every invalid field of this section, as human-readable lines."""
        return []

    def __post_init__(self) -> None:
        problems = self._problems()
        if problems:
            exc = ConfigurationError(
                f"invalid {type(self).__name__}: " + "; ".join(problems)
            )
            exc.problems = tuple(problems)
            raise exc

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def _from_section(
        cls, data: Mapping, section: str, problems: list[str]
    ) -> "_Section | None":
        """Build this section from a mapping, accumulating *all* errors.

        Unknown keys and invalid field values are appended to
        ``problems`` (section-qualified); missing keys take the field
        defaults. Returns ``None`` when the section could not be built.
        """
        if not isinstance(data, Mapping):
            problems.append(
                f"{section} must be a mapping of fields, got {data!r}"
            )
            return None
        known = {f.name for f in fields(cls)}
        for key in sorted(set(data) - known):
            problems.append(f"{section}.{key}: unknown field")
        kwargs = {key: value for key, value in data.items() if key in known}
        try:
            return cls(**kwargs)
        except ConfigurationError as exc:
            problems.extend(
                f"{section}.{p}" for p in getattr(exc, "problems", (str(exc),))
            )
            return None


@dataclass(frozen=True)
class TrafficSpec(_Section):
    """What one serving run streams, and which instrument it comes from.

    Parameters
    ----------
    shots:
        Shots of traffic per :meth:`ReadoutService.run` call (per
        feedline in a cluster). Stream-bound backends (``replay``,
        ``socket``) deliver their own fixed shot count instead.
    chunk_size:
        Shots per source chunk (the :class:`TraceSource` granularity).
    seed:
        Traffic seed (non-negative — it feeds ``np.random``). ``None``
        uses the resolved profile's seed + 1, so live traffic never
        replays the calibration corpus stream.
    backend:
        Instrument backend serving the traffic — one of
        :data:`repro.backends.BACKEND_NAMES` (``simulator``/``dummy``/
        ``replay``/``socket``).
    corpus_path:
        Recorded-corpus directory to replay (required by, and only
        meaningful with, the ``replay`` backend).
    record_path:
        Tee the served traffic into a versioned corpus at this
        directory (any generating backend; invalid with ``replay``).
    socket_path:
        ``AF_UNIX`` socket path the ``socket`` backend connects to
        (required by, and only meaningful with, that backend).
    """

    shots: int = 2000
    chunk_size: int = 256
    seed: int | None = None
    backend: str = "simulator"
    corpus_path: str | None = None
    record_path: str | None = None
    socket_path: str | None = None

    def _problems(self) -> list[str]:
        problems: list[str] = []
        _check_int(problems, "shots", self.shots, minimum=1)
        _check_int(problems, "chunk_size", self.chunk_size, minimum=1)
        _check_int(problems, "seed", self.seed, minimum=0, optional=True)
        _check_str(problems, "backend", self.backend)
        _check_str(problems, "corpus_path", self.corpus_path, optional=True)
        _check_str(problems, "record_path", self.record_path, optional=True)
        _check_str(problems, "socket_path", self.socket_path, optional=True)
        if isinstance(self.backend, str) and self.backend:
            from repro.backends.registry import BACKEND_NAMES

            if self.backend not in BACKEND_NAMES:
                known = ", ".join(BACKEND_NAMES)
                problems.append(
                    f"backend must be one of: {known}; got {self.backend!r}"
                )
            else:
                problems.extend(self._backend_problems())
        return problems

    def _backend_problems(self) -> list[str]:
        """Cross-field requirements of a valid backend selection."""
        problems: list[str] = []
        if self.backend == "replay":
            if self.corpus_path is None:
                problems.append(
                    "corpus_path is required by the replay backend"
                )
            if self.record_path is not None:
                problems.append(
                    "record_path cannot be combined with the replay "
                    "backend: a replayed stream is already a recording"
                )
        elif self.corpus_path is not None:
            problems.append(
                "corpus_path is only meaningful with the replay backend, "
                f"got backend={self.backend!r}"
            )
        if self.backend == "socket":
            if self.socket_path is None:
                problems.append(
                    "socket_path is required by the socket backend"
                )
        elif self.socket_path is not None:
            problems.append(
                "socket_path is only meaningful with the socket backend, "
                f"got backend={self.backend!r}"
            )
        return problems


@dataclass(frozen=True)
class ClusterSpec(_Section):
    """Where the traffic is served.

    Parameters
    ----------
    feedlines:
        Readout groups to serve; ``1`` runs the single-feedline chain.
    executor:
        Shard backend for multi-feedline serving (``serial``/``thread``/
        ``process``); validated — but inert — with one feedline.
    workers:
        Shard workers (``None``: one per feedline, capped at the CPU
        count).
    channel_workers:
        Qubit-channel workers *inside* each feedline's demod and
        matched-filter stages.
    qubits_per_feedline:
        Qubits multiplexed on each served readout group. ``None`` serves
        the base device's full complement — the chip itself defines the
        default, not a magic number here.
    """

    feedlines: int = 1
    executor: str = "thread"
    workers: int | None = None
    channel_workers: int = 1
    qubits_per_feedline: int | None = None

    def _problems(self) -> list[str]:
        problems: list[str] = []
        _check_int(problems, "feedlines", self.feedlines, minimum=1)
        _check_str(problems, "executor", self.executor)
        if isinstance(self.executor, str) and self.executor:
            from repro.pipeline.cluster import EXECUTOR_NAMES

            if self.executor not in EXECUTOR_NAMES:
                known = ", ".join(EXECUTOR_NAMES)
                problems.append(
                    f"executor must be one of: {known}; got {self.executor!r}"
                )
        _check_int(problems, "workers", self.workers, minimum=1, optional=True)
        _check_int(problems, "channel_workers", self.channel_workers, minimum=1)
        _check_int(
            problems,
            "qubits_per_feedline",
            self.qubits_per_feedline,
            minimum=1,
            optional=True,
        )
        return problems


@dataclass(frozen=True)
class BatchingSpec(_Section):
    """How the stream is micro-batched.

    Parameters
    ----------
    batch_size:
        Shots per dispatched micro-batch (the initial size when
        ``adaptive`` is on).
    max_pending:
        Sink queue capacity in batches before backpressure blocks.
    adaptive:
        Resize batches from the per-shot compute-latency EWMA against
        the FPGA decision budget.
    max_batch_size:
        Upper bound on the adapted batch size (adaptive mode only).
    target_batch_ms:
        Per-batch latency target for adaptive mode; ``None`` derives it
        from the serving head's FPGA decision budget.
    """

    batch_size: int = 64
    max_pending: int = 8
    adaptive: bool = False
    max_batch_size: int = 1024
    target_batch_ms: float | None = None

    def _problems(self) -> list[str]:
        problems: list[str] = []
        _check_int(problems, "batch_size", self.batch_size, minimum=1)
        _check_int(problems, "max_pending", self.max_pending, minimum=1)
        _check_bool(problems, "adaptive", self.adaptive)
        _check_int(problems, "max_batch_size", self.max_batch_size, minimum=1)
        _check_number(
            problems,
            "target_batch_ms",
            self.target_batch_ms,
            positive=True,
            optional=True,
        )
        if (
            self.adaptive is True
            and isinstance(self.batch_size, int)
            and isinstance(self.max_batch_size, int)
            and not isinstance(self.batch_size, bool)
            and 1 <= self.batch_size
            and 1 <= self.max_batch_size < self.batch_size
        ):
            problems.append(
                "max_batch_size must be >= batch_size when adaptive "
                f"batching is on, got {self.max_batch_size} < "
                f"{self.batch_size}"
            )
        return problems


@dataclass(frozen=True)
class CalibrationSpec(_Section):
    """How discriminators are calibrated before serving.

    Parameters
    ----------
    profile:
        Sizing-profile name (``quick``/``full``/``paper``). Resolved at
        warm-up; :class:`ReadoutService` also accepts a ready
        :class:`~repro.config.Profile` override for ad-hoc sizings.
    design:
        Registered discriminator design to serve (must resolve to the
        MLR family; checked at warm-up against the plugin registry).
    registry_dir:
        Calibration-registry root. ``None`` gives each service session a
        private temporary registry, discarded on close.
    seed:
        Profile seed override (``Profile.with_seed``); shifts both the
        calibration corpus and the derived default traffic seed.
    """

    profile: str = "quick"
    design: str = "ours"
    registry_dir: str | None = None
    seed: int | None = None

    def _problems(self) -> list[str]:
        problems: list[str] = []
        _check_str(problems, "profile", self.profile)
        _check_str(problems, "design", self.design)
        _check_str(problems, "registry_dir", self.registry_dir, optional=True)
        # np.random seeds must be non-negative, same as traffic.seed.
        _check_int(problems, "seed", self.seed, minimum=0, optional=True)
        return problems


@dataclass(frozen=True)
class DriftSpec(_Section):
    """Simulated device drift injected across the serving session.

    All rates are per kilo-shot of session traffic and map directly
    onto :class:`repro.physics.drift.DriftModel`; the all-zero default
    is a stationary device (no injection, no behavior change).

    Parameters
    ----------
    if_detune_ghz_per_kshot:
        Linear readout-tone detuning (GHz per 1000 shots); may be
        negative.
    t1_decay_per_kshot:
        Exponential T1 decay rate per 1000 shots.
    amplitude_decay_per_kshot:
        Exponential drive-amplitude (assignment-contrast) decay rate
        per 1000 shots.
    """

    if_detune_ghz_per_kshot: float = 0.0
    t1_decay_per_kshot: float = 0.0
    amplitude_decay_per_kshot: float = 0.0

    def _problems(self) -> list[str]:
        problems: list[str] = []
        _check_number(
            problems, "if_detune_ghz_per_kshot", self.if_detune_ghz_per_kshot
        )
        for name in ("t1_decay_per_kshot", "amplitude_decay_per_kshot"):
            value = getattr(self, name)
            _check_number(problems, name, value)
            if isinstance(value, (int, float)) and not isinstance(
                value, bool
            ) and value < 0:
                problems.append(f"{name} must be >= 0, got {value}")
        return problems

    @property
    def active(self) -> bool:
        """Whether any drift is actually injected."""
        return (
            self.if_detune_ghz_per_kshot != 0.0
            or self.t1_decay_per_kshot != 0.0
            or self.amplitude_decay_per_kshot != 0.0
        )

    def model(self):
        """The :class:`~repro.physics.drift.DriftModel` this spec names,
        or ``None`` for a stationary device."""
        if not self.active:
            return None
        from repro.physics.drift import DriftModel

        return DriftModel(
            if_detune_ghz_per_kshot=self.if_detune_ghz_per_kshot,
            t1_decay_per_kshot=self.t1_decay_per_kshot,
            amplitude_decay_per_kshot=self.amplitude_decay_per_kshot,
        )


@dataclass(frozen=True)
class RecalibrationSpec(_Section):
    """How a session responds to a drift alarm.

    Parameters
    ----------
    enabled:
        Refit through the shard pool when a run's drift alarm trips,
        hot-swapping the next calibration-artifact version. Off by
        default: detection always reports, recovery is opt-in.
    threshold:
        Drift score at which the alarm trips (also the per-run
        ``drift_score`` threshold surfaced in reports).
    shot_budget:
        Calibration shots per basis state for recalibration fits;
        ``None`` reuses the profile's ``shots_per_state`` (a smaller
        budget trades recovery fidelity for refit latency).
    cooldown_runs:
        Runs that must complete after a recalibration before another
        may trigger — a still-drifting device must not thrash refits.
    max_recalibrations:
        Hard cap on recalibrations per session; ``None`` is unlimited.
    min_shots:
        Shots a run's monitor must see before it may alarm.
    """

    enabled: bool = False
    threshold: float = 0.1
    shot_budget: int | None = None
    cooldown_runs: int = 1
    max_recalibrations: int | None = None
    min_shots: int = 50

    def _problems(self) -> list[str]:
        problems: list[str] = []
        _check_bool(problems, "enabled", self.enabled)
        _check_number(problems, "threshold", self.threshold, positive=True)
        _check_int(
            problems, "shot_budget", self.shot_budget, minimum=1, optional=True
        )
        _check_int(problems, "cooldown_runs", self.cooldown_runs, minimum=0)
        _check_int(
            problems,
            "max_recalibrations",
            self.max_recalibrations,
            minimum=0,
            optional=True,
        )
        _check_int(problems, "min_shots", self.min_shots, minimum=0)
        return problems


#: Section name -> section class, in canonical serialization order.
_SECTIONS: dict[str, type[_Section]] = {
    "traffic": TrafficSpec,
    "cluster": ClusterSpec,
    "batching": BatchingSpec,
    "calibration": CalibrationSpec,
    "drift": DriftSpec,
    "recalibration": RecalibrationSpec,
}


@dataclass(frozen=True)
class ServeSpec:
    """The single declarative source of truth for one serving session.

    Aggregates :class:`TrafficSpec`, :class:`ClusterSpec`,
    :class:`BatchingSpec`, and :class:`CalibrationSpec`; every front end
    (``repro.api.run_pipeline`` kwargs, ``repro pipeline`` flags,
    ``repro serve --spec``) is derived from this object. Frozen, fully
    validated on construction, JSON round-trip stable.
    """

    traffic: TrafficSpec = field(default_factory=TrafficSpec)
    cluster: ClusterSpec = field(default_factory=ClusterSpec)
    batching: BatchingSpec = field(default_factory=BatchingSpec)
    calibration: CalibrationSpec = field(default_factory=CalibrationSpec)
    drift: DriftSpec = field(default_factory=DriftSpec)
    recalibration: RecalibrationSpec = field(
        default_factory=RecalibrationSpec
    )

    def __post_init__(self) -> None:
        problems = [
            f"{name} must be a {cls.__name__}, got "
            f"{type(getattr(self, name)).__name__}"
            for name, cls in _SECTIONS.items()
            if not isinstance(getattr(self, name), cls)
        ]
        if not problems:
            problems = self._cross_section_problems()
        if problems:
            exc = ConfigurationError(
                "invalid ServeSpec: " + "; ".join(problems)
            )
            exc.problems = tuple(problems)
            raise exc

    def _cross_section_problems(self) -> list[str]:
        """Constraints spanning sections (each section is already valid)."""
        problems: list[str] = []
        backend = self.traffic.backend
        if self.drift.active and backend != "simulator":
            problems.append(
                "drift: drift injection requires traffic.backend "
                f"'simulator', got {backend!r}"
            )
        if self.cluster.feedlines > 1:
            if backend in ("dummy", "socket"):
                problems.append(
                    f"traffic.backend: the {backend!r} backend serves a "
                    f"single feedline only, got cluster.feedlines="
                    f"{self.cluster.feedlines}"
                )
            if self.traffic.record_path is not None:
                problems.append(
                    "traffic.record_path: recording requires "
                    "cluster.feedlines == 1, got "
                    f"{self.cluster.feedlines}"
                )
        return problems

    # -- serialization -------------------------------------------------

    def to_dict(self) -> dict:
        """Nested plain-value form; ``json.dumps``-able as is."""
        return {
            name: getattr(self, name).to_dict() for name in _SECTIONS
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "ServeSpec":
        """Inverse of :meth:`to_dict`; missing sections take defaults.

        Validation is exhaustive: every unknown section, unknown field,
        and invalid value across *all* sections is collected and raised
        as one :class:`ConfigurationError`, so a bad spec file is fixed
        in a single edit pass.
        """
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"ServeSpec data must be a mapping of sections, got {data!r}"
            )
        problems: list[str] = []
        for key in sorted(set(data) - set(_SECTIONS)):
            known = ", ".join(_SECTIONS)
            problems.append(
                f"{key}: unknown section (expected one of: {known})"
            )
        sections: dict[str, _Section | None] = {}
        for name, section_cls in _SECTIONS.items():
            if name in data:
                sections[name] = section_cls._from_section(
                    data[name], name, problems
                )
            else:
                sections[name] = section_cls()
        if problems:
            exc = ConfigurationError(
                "invalid ServeSpec: " + "; ".join(problems)
            )
            exc.problems = tuple(problems)
            raise exc
        return cls(**sections)

    @classmethod
    def from_file(cls, path: str | Path) -> "ServeSpec":
        """Load a spec from a JSON file (see :meth:`to_file`)."""
        path = Path(path)
        try:
            payload = json.loads(path.read_text())
        except OSError as exc:
            raise ConfigurationError(
                f"cannot read spec file {path}: {exc}"
            ) from exc
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"spec file {path} is not valid JSON: {exc}"
            ) from exc
        return cls.from_dict(payload)

    def to_file(self, path: str | Path) -> Path:
        """Write the spec as indented JSON; returns the path."""
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path

    # -- derivation helpers --------------------------------------------

    def with_traffic(self, **changes) -> "ServeSpec":
        """Copy of this spec with some :class:`TrafficSpec` fields replaced."""
        return dataclasses.replace(
            self, traffic=dataclasses.replace(self.traffic, **changes)
        )

    def resolved_profile(self, override: Profile | None = None) -> Profile:
        """The calibration :class:`Profile` this spec serves under.

        ``override`` (a ready Profile instance, e.g. an ad-hoc test
        sizing) wins over the spec's named profile; the spec's seed
        override is applied in either case.
        """
        profile = (
            override
            if override is not None
            else get_profile(self.calibration.profile)
        )
        if self.calibration.seed is not None:
            profile = profile.with_seed(self.calibration.seed)
        return profile

    def pipeline_config(self) -> "PipelineConfig":
        """The per-feedline :class:`PipelineConfig` this spec derives."""
        from repro.pipeline.runner import PipelineConfig

        return PipelineConfig(
            batch_size=self.batching.batch_size,
            workers=self.cluster.channel_workers,
            max_pending=self.batching.max_pending,
            adaptive_batching=self.batching.adaptive,
            max_batch_size=self.batching.max_batch_size,
            target_batch_ms=self.batching.target_batch_ms,
            drift_threshold=self.recalibration.threshold,
            drift_min_shots=self.recalibration.min_shots,
        )
