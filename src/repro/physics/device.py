"""Device parameter sets: qubits, readout resonators, and the 5-qubit chip.

Units: time in nanoseconds, angular frequencies in rad/ns, linear
frequencies in GHz. The default chip mirrors the setup of the paper's data
source (Lienhard et al., PRApplied 2022): five transmons read out through
individual resonators frequency-multiplexed onto one feedline, 500 MS/s
ADCs, 1 us readout, T1 between 7 us and 40 us, with qubit 2 (index 1)
deliberately hard to distinguish and qubits 3 and 4 (indices 2, 3) prone
to |2> excitation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

import numpy as np

from repro.exceptions import ConfigurationError
from repro.physics.adc import ADCConfig

__all__ = [
    "QubitParams",
    "ChipConfig",
    "default_five_qubit_chip",
    "make_feedline_chip",
    "multi_feedline_chips",
]

TWO_PI = 2.0 * math.pi


@dataclass(frozen=True)
class QubitParams:
    """Per-qubit readout parameters.

    Parameters
    ----------
    name:
        Display name (``"Q1"``...).
    if_frequency_ghz:
        Intermediate frequency of this qubit's readout tone after analog
        down-mixing; must fit inside the ADC Nyquist band.
    kappa:
        Resonator linewidth (rad/ns). Ring-up time constant is ``2/kappa``.
    chi:
        Dispersive half-shift (rad/ns): the |0>/|1> pulls are ``-chi`` and
        ``+chi`` around the probe tone.
    level2_pull_factor:
        The |2> pull is ``chi * level2_pull_factor`` (transmons pull
        super-linearly with the level index).
    amplitude:
        Dimensionless drive amplitude; sets this qubit's steady-state
        photon amplitude on the feedline and therefore its SNR.
    t1_ns:
        Relaxation time of |1> in nanoseconds.
    t1_2_ns:
        Relaxation time of |2> (|2> -> |1>); transmon |2> decays roughly
        twice as fast as |1>.
    direct_20_rate:
        Small direct |2> -> |0> decay rate (1/ns).
    excite_01_rate, excite_12_rate, excite_02_rate:
        Measurement-induced excitation rates (1/ns) during the readout
        window; leak-prone qubits have elevated ``excite_12_rate``.
    prep_leak_prob:
        Probability that preparing |1> actually lands in |2> (natural
        leakage from gate/heating errors) — what Sec V.A's clustering digs
        out of two-level calibration data.
    prep_thermal_prob:
        Probability that preparing |0> actually lands in |1|>.
    lo_phase:
        Fixed local-oscillator phase rotation applied to this qubit's tone.
    """

    name: str
    if_frequency_ghz: float
    kappa: float
    chi: float
    level2_pull_factor: float = 6.0
    amplitude: float = 1.0
    t1_ns: float = 30_000.0
    t1_2_ns: float = 15_000.0
    direct_20_rate: float = 0.0
    excite_01_rate: float = 0.0
    excite_12_rate: float = 0.0
    excite_02_rate: float = 0.0
    prep_leak_prob: float = 0.005
    prep_thermal_prob: float = 0.002
    lo_phase: float = 0.0

    def __post_init__(self) -> None:
        if self.kappa <= 0 or self.chi <= 0:
            raise ConfigurationError(
                f"{self.name}: kappa and chi must be positive"
            )
        if self.amplitude <= 0:
            raise ConfigurationError(f"{self.name}: amplitude must be positive")
        if self.t1_ns <= 0 or self.t1_2_ns <= 0:
            raise ConfigurationError(f"{self.name}: T1 times must be positive")
        for attr in ("direct_20_rate", "excite_01_rate", "excite_12_rate",
                     "excite_02_rate"):
            if getattr(self, attr) < 0:
                raise ConfigurationError(f"{self.name}: {attr} must be >= 0")
        for attr in ("prep_leak_prob", "prep_thermal_prob"):
            value = getattr(self, attr)
            if not 0.0 <= value < 1.0:
                raise ConfigurationError(
                    f"{self.name}: {attr} must be in [0, 1), got {value}"
                )

    def level_pulls(self, n_levels: int = 3) -> np.ndarray:
        """Resonator detuning from the probe for each qubit level (rad/ns)."""
        if n_levels != 3:
            raise ConfigurationError(
                f"only 3-level devices are modeled, got n_levels={n_levels}"
            )
        return np.array([-self.chi, self.chi, self.chi * self.level2_pull_factor])

    @property
    def drive(self) -> float:
        """Drive strength chosen so the steady-state field magnitude for the
        computational states is approximately ``amplitude``."""
        detuning_mag = math.hypot(self.chi, self.kappa / 2.0)
        return self.amplitude * detuning_mag

    def to_dict(self) -> dict:
        """Plain-value dictionary for corpus serialization."""
        return {
            "name": self.name,
            "if_frequency_ghz": self.if_frequency_ghz,
            "kappa": self.kappa,
            "chi": self.chi,
            "level2_pull_factor": self.level2_pull_factor,
            "amplitude": self.amplitude,
            "t1_ns": self.t1_ns,
            "t1_2_ns": self.t1_2_ns,
            "direct_20_rate": self.direct_20_rate,
            "excite_01_rate": self.excite_01_rate,
            "excite_12_rate": self.excite_12_rate,
            "excite_02_rate": self.excite_02_rate,
            "prep_leak_prob": self.prep_leak_prob,
            "prep_thermal_prob": self.prep_thermal_prob,
            "lo_phase": self.lo_phase,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "QubitParams":
        """Inverse of :meth:`to_dict`."""
        return cls(**data)


@dataclass(frozen=True)
class ChipConfig:
    """A multiplexed readout group: qubits sharing one feedline and ADC pair.

    Parameters
    ----------
    qubits:
        Per-qubit parameters, in feedline order.
    adc:
        ADC configuration (sample rate, resolution, full scale).
    trace_len:
        Number of ADC samples per readout window (500 at 500 MS/s = 1 us).
    noise_std:
        Standard deviation of the additive complex amplifier noise per
        ADC sample (per quadrature it is ``noise_std / sqrt(2)``).
    n_levels:
        Levels per qubit; 3 throughout the paper.
    crosstalk:
        Complex matrix ``C`` with zero diagonal; the effective baseband
        field of qubit q is ``alpha_q + sum_p C[q, p] * alpha_p``,
        modeling inter-resonator coupling and spectral overlap.
    """

    qubits: tuple[QubitParams, ...]
    adc: ADCConfig = field(default_factory=lambda: ADCConfig())
    trace_len: int = 500
    noise_std: float = 4.0
    n_levels: int = 3
    crosstalk: np.ndarray | None = None

    def __post_init__(self) -> None:
        if not self.qubits:
            raise ConfigurationError("chip needs at least one qubit")
        if self.trace_len < 2:
            raise ConfigurationError(f"trace_len must be >= 2, got {self.trace_len}")
        if self.noise_std < 0:
            raise ConfigurationError("noise_std must be >= 0")
        if self.n_levels != 3:
            raise ConfigurationError("only 3-level chips are modeled")
        n = len(self.qubits)
        if self.crosstalk is None:
            object.__setattr__(self, "crosstalk", np.zeros((n, n), dtype=complex))
        else:
            xt = np.asarray(self.crosstalk, dtype=complex)
            if xt.shape != (n, n):
                raise ConfigurationError(
                    f"crosstalk must be ({n}, {n}), got {xt.shape}"
                )
            if np.any(np.abs(np.diag(xt)) > 0):
                raise ConfigurationError("crosstalk diagonal must be zero")
            object.__setattr__(self, "crosstalk", xt)
        nyquist = self.adc.sample_rate_ghz / 2.0
        for qubit in self.qubits:
            if abs(qubit.if_frequency_ghz) >= nyquist:
                raise ConfigurationError(
                    f"{qubit.name}: IF {qubit.if_frequency_ghz} GHz outside "
                    f"Nyquist band +-{nyquist} GHz"
                )

    @property
    def n_qubits(self) -> int:
        return len(self.qubits)

    @property
    def dt_ns(self) -> float:
        """ADC sample period in nanoseconds."""
        return 1.0 / self.adc.sample_rate_ghz

    @property
    def duration_ns(self) -> float:
        """Readout window length in nanoseconds."""
        return self.trace_len * self.dt_ns

    def sample_times(self, trace_len: int | None = None) -> np.ndarray:
        """Sample timestamps (ns) for a window of ``trace_len`` samples."""
        n = self.trace_len if trace_len is None else trace_len
        return np.arange(n) * self.dt_ns

    def with_trace_len(self, trace_len: int) -> "ChipConfig":
        """Copy of this chip with a different readout window length."""
        return replace(self, trace_len=trace_len)

    def to_dict(self) -> dict:
        """Plain-value dictionary for corpus serialization."""
        return {
            "qubits": [q.to_dict() for q in self.qubits],
            "adc": self.adc.to_dict(),
            "trace_len": self.trace_len,
            "noise_std": self.noise_std,
            "n_levels": self.n_levels,
            "crosstalk_real": np.real(self.crosstalk).tolist(),
            "crosstalk_imag": np.imag(self.crosstalk).tolist(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ChipConfig":
        """Inverse of :meth:`to_dict`."""
        crosstalk = np.asarray(data["crosstalk_real"]) + 1j * np.asarray(
            data["crosstalk_imag"]
        )
        return cls(
            qubits=tuple(QubitParams.from_dict(q) for q in data["qubits"]),
            adc=ADCConfig.from_dict(data["adc"]),
            trace_len=int(data["trace_len"]),
            noise_std=float(data["noise_std"]),
            n_levels=int(data["n_levels"]),
            crosstalk=crosstalk,
        )


def _mhz(value: float) -> float:
    """Convert a linear frequency in MHz to angular rad/ns."""
    return TWO_PI * value * 1e-3


def default_five_qubit_chip(
    noise_std: float = 4.0, trace_len: int = 500
) -> ChipConfig:
    """The reproduction's stand-in for the paper's five-qubit device.

    Qubit indices follow the paper's numbering minus one: index 1 ("Q2")
    has low dispersive shift, weak drive, and the shortest T1 (its readout
    was the hardest in the source dataset); indices 2 and 3 ("Q3", "Q4")
    have elevated measurement-induced |1> -> |2> excitation and natural
    leakage, matching the paper's observation that qubits 3 and 4 are the
    leak-prone ones.
    """
    qubits = (
        QubitParams(
            name="Q1", if_frequency_ghz=-0.180, kappa=_mhz(2.0), chi=_mhz(1.0),
            amplitude=1.00, t1_ns=40_000.0, t1_2_ns=20_000.0,
            direct_20_rate=2e-7, excite_01_rate=1.0e-5, excite_12_rate=5e-6,
            excite_02_rate=1e-6, prep_leak_prob=0.004, prep_thermal_prob=0.002,
            lo_phase=0.3,
        ),
        QubitParams(
            name="Q2", if_frequency_ghz=-0.090, kappa=_mhz(2.0), chi=_mhz(0.42),
            amplitude=0.52, t1_ns=7_000.0, t1_2_ns=3_500.0,
            direct_20_rate=4e-7, excite_01_rate=1.2e-5, excite_12_rate=8e-6,
            excite_02_rate=1e-6, prep_leak_prob=0.006, prep_thermal_prob=0.004,
            lo_phase=-0.7,
        ),
        QubitParams(
            name="Q3", if_frequency_ghz=0.015, kappa=_mhz(2.0), chi=_mhz(0.85),
            amplitude=0.92, t1_ns=25_000.0, t1_2_ns=12_500.0,
            direct_20_rate=3e-7, excite_01_rate=1.5e-5, excite_12_rate=4.5e-5,
            excite_02_rate=3e-6, prep_leak_prob=0.020, prep_thermal_prob=0.003,
            lo_phase=1.1,
        ),
        QubitParams(
            name="Q4", if_frequency_ghz=0.095, kappa=_mhz(2.0), chi=_mhz(0.85),
            amplitude=0.90, t1_ns=20_000.0, t1_2_ns=10_000.0,
            direct_20_rate=3e-7, excite_01_rate=1.8e-5, excite_12_rate=5.5e-5,
            excite_02_rate=4e-6, prep_leak_prob=0.025, prep_thermal_prob=0.003,
            lo_phase=-1.9,
        ),
        QubitParams(
            name="Q5", if_frequency_ghz=0.185, kappa=_mhz(2.0), chi=_mhz(1.1),
            amplitude=1.05, t1_ns=35_000.0, t1_2_ns=17_500.0,
            direct_20_rate=2e-7, excite_01_rate=1.0e-5, excite_12_rate=6e-6,
            excite_02_rate=1e-6, prep_leak_prob=0.005, prep_thermal_prob=0.002,
            lo_phase=2.4,
        ),
    )
    n = len(qubits)
    crosstalk = np.zeros((n, n), dtype=complex)
    for q in range(n):
        for p in range(n):
            if q == p:
                continue
            gap = abs(q - p)
            if gap == 1:
                crosstalk[q, p] = 0.12 * np.exp(1j * 0.9 * (q - p))
            elif gap == 2:
                crosstalk[q, p] = 0.03 * np.exp(1j * 0.4 * (q - p))
    # The hard qubit also suffers the strongest incoming crosstalk.
    crosstalk[1, :] *= 1.8
    crosstalk[1, 1] = 0.0
    return ChipConfig(
        qubits=qubits,
        adc=ADCConfig(),
        trace_len=trace_len,
        noise_std=noise_std,
        crosstalk=crosstalk,
    )


def make_feedline_chip(
    feedline: int,
    n_qubits: int = 5,
    noise_std: float = 4.0,
    trace_len: int = 500,
) -> ChipConfig:
    """One readout group (feedline) of a multi-feedline device.

    Feedline 0 with five qubits is exactly
    :func:`default_five_qubit_chip`; other feedlines perturb the qubit
    parameters deterministically by feedline index (slightly different
    dispersive shifts, drive amplitudes, T1s, and LO phases), modeling
    the fabrication spread between readout groups on one chip, so no two
    feedlines serve byte-identical calibration artifacts.

    Parameters
    ----------
    feedline:
        Feedline index (>= 0); scales the parameter perturbations.
    n_qubits:
        Qubits multiplexed on this feedline, 1..5 (a slice of the
        default group; the paper's datapath is replicated per feedline,
        not widened).
    noise_std, trace_len:
        Forwarded to :class:`ChipConfig`.
    """
    if feedline < 0:
        raise ConfigurationError(f"feedline must be >= 0, got {feedline}")
    base = default_five_qubit_chip(noise_std=noise_std, trace_len=trace_len)
    if not 1 <= n_qubits <= base.n_qubits:
        raise ConfigurationError(
            f"n_qubits must be in [1, {base.n_qubits}], got {n_qubits}"
        )
    if feedline == 0 and n_qubits == base.n_qubits:
        return base
    # Deterministic fabrication spread: a few percent per feedline, kept
    # small enough that every group stays a healthy readout device.
    chi_scale = 1.0 + 0.04 * (feedline % 7)
    amp_scale = 1.0 - 0.015 * (feedline % 5)
    t1_scale = 1.0 - 0.03 * (feedline % 4)
    qubits = tuple(
        replace(
            q,
            name=f"F{feedline}{q.name}",
            chi=q.chi * chi_scale,
            amplitude=q.amplitude * amp_scale,
            t1_ns=q.t1_ns * t1_scale,
            t1_2_ns=q.t1_2_ns * t1_scale,
            lo_phase=q.lo_phase + 0.17 * feedline,
        )
        for q in base.qubits[:n_qubits]
    )
    crosstalk = np.asarray(base.crosstalk)[:n_qubits, :n_qubits].copy()
    return ChipConfig(
        qubits=qubits,
        adc=base.adc,
        trace_len=trace_len,
        noise_std=noise_std,
        crosstalk=crosstalk,
    )


def multi_feedline_chips(
    n_feedlines: int,
    n_qubits: int = 5,
    noise_std: float = 4.0,
    trace_len: int = 500,
) -> tuple[ChipConfig, ...]:
    """Readout groups of an ``n_feedlines``-feedline device.

    The multi-feedline scaling unit of the paper's architecture: each
    feedline is an independent :class:`ChipConfig` (its own qubits, ADC
    pair, and crosstalk matrix) discriminated by its own replicated
    datapath. See :func:`make_feedline_chip` for the per-feedline
    parameter spread.
    """
    if n_feedlines < 1:
        raise ConfigurationError(
            f"n_feedlines must be >= 1, got {n_feedlines}"
        )
    return tuple(
        make_feedline_chip(
            k, n_qubits=n_qubits, noise_std=noise_std, trace_len=trace_len
        )
        for k in range(n_feedlines)
    )
