"""Error-trace mining via the centroid rule (Sec V.B).

"Traces belonging to a particular state but positioned closer to other
cluster centroids can be tagged as error traces." Given MTV points and
prepared labels, this module tags each trace with the state whose centroid
it is nearest to; traces whose nearest centroid disagrees with their label
are relaxation candidates (nearest level below the prepared one) or
excitation candidates (nearest level above).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataError, ShapeError

__all__ = ["state_centroids", "tag_error_traces"]


def state_centroids(
    points: np.ndarray, labels: np.ndarray, n_levels: int
) -> np.ndarray:
    """Mean MTV point per prepared level; rows of shape (n_levels, dim).

    Raises
    ------
    DataError
        If any level has no traces (centroids would be undefined).
    """
    points = np.asarray(points, dtype=np.float64)
    labels = np.asarray(labels)
    if points.ndim != 2:
        raise ShapeError(f"points must be 2-D, got {points.shape}")
    if labels.shape[0] != points.shape[0]:
        raise ShapeError("labels and points disagree on sample count")
    centroids = np.empty((n_levels, points.shape[1]))
    for level in range(n_levels):
        members = points[labels == level]
        if members.shape[0] == 0:
            raise DataError(f"no traces prepared in level {level}")
        centroids[level] = members.mean(axis=0)
    return centroids


def tag_error_traces(
    points: np.ndarray, labels: np.ndarray, n_levels: int
) -> dict[tuple[int, int], np.ndarray]:
    """Tag traces whose MTV sits nearest a different state's centroid.

    Returns a dict mapping ordered pairs ``(prepared, nearest)`` with
    ``prepared != nearest`` to boolean masks over all traces. Pairs with
    ``nearest < prepared`` are relaxation-error candidates; pairs with
    ``nearest > prepared`` are excitation-error candidates.
    """
    points = np.asarray(points, dtype=np.float64)
    labels = np.asarray(labels)
    centroids = state_centroids(points, labels, n_levels)
    d2 = (
        np.sum(points * points, axis=1)[:, None]
        - 2.0 * points @ centroids.T
        + np.sum(centroids * centroids, axis=1)[None, :]
    )
    nearest = np.argmin(d2, axis=1)
    masks: dict[tuple[int, int], np.ndarray] = {}
    for prepared in range(n_levels):
        for target in range(n_levels):
            if prepared == target:
                continue
            masks[(prepared, target)] = (labels == prepared) & (nearest == target)
    return masks
