"""Readout confusion channels: from discriminator errors to QEC inputs.

The QEC leakage simulator needs two numbers from the readout layer: the
overall classification error and the *asymmetric* |2> confusion (how often
a computational state is misreported as leaked, and vice versa). This
module extracts both from a fitted discriminator's per-qubit confusion
matrices, closing the loop between the measured discriminator quality and
the Table I / Table VI Monte-Carlo.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DataError, ShapeError
from repro.ml.metrics import confusion_matrix

__all__ = ["ReadoutConfusion", "confusion_from_labels"]


@dataclass(frozen=True)
class ReadoutConfusion:
    """Per-qubit level-confusion statistics of a discriminator.

    Attributes
    ----------
    matrix:
        Row-normalized confusion matrix P(reported | true), (3, 3).
    """

    matrix: np.ndarray

    def __post_init__(self) -> None:
        m = np.asarray(self.matrix, dtype=np.float64)
        if m.shape != (3, 3):
            raise ShapeError(f"matrix must be (3, 3), got {m.shape}")
        if np.any(m < 0) or not np.allclose(m.sum(axis=1), 1.0, atol=1e-6):
            raise DataError("rows must be probability distributions")
        object.__setattr__(self, "matrix", m)

    @property
    def error_rate(self) -> float:
        """Mean misclassification probability over true levels."""
        return float(1.0 - np.mean(np.diag(self.matrix)))

    @property
    def missed_leak_rate(self) -> float:
        """P(reported computational | truly leaked)."""
        return float(self.matrix[2, 0] + self.matrix[2, 1])

    @property
    def false_leak_rate(self) -> float:
        """P(reported leaked | truly computational), averaged over 0/1."""
        return float(0.5 * (self.matrix[0, 2] + self.matrix[1, 2]))

    @property
    def false_two_fraction(self) -> float:
        """The QEC simulator's knob: false-leak rate as a fraction of the
        overall error rate (see LeakageParams.false_two_fraction)."""
        err = max(self.error_rate, 1e-12)
        return float(min(1.0, self.false_leak_rate / err))


def confusion_from_labels(
    true_levels: np.ndarray, reported_levels: np.ndarray
) -> ReadoutConfusion:
    """Build a :class:`ReadoutConfusion` from per-qubit label pairs.

    Levels absent from ``true_levels`` get an identity row (no evidence of
    confusion).
    """
    true_levels = np.asarray(true_levels)
    reported_levels = np.asarray(reported_levels)
    counts = confusion_matrix(true_levels, reported_levels, n_classes=3)
    matrix = np.eye(3)
    for level in range(3):
        total = counts[level].sum()
        if total > 0:
            matrix[level] = counts[level] / total
    return ReadoutConfusion(matrix=matrix)
