"""repro.fleet: fleet spec round-trips, fair-share scheduling, shared
shard pools, multi-tenant isolation, and the `repro fleet` CLI."""

from __future__ import annotations

import json
import multiprocessing
import threading
import time
from pathlib import Path

import pytest

import repro.cli as cli
from repro.config import Profile
from repro.discriminators.mlr import MLRDiscriminator
from repro.exceptions import ConfigurationError, DataError
from repro.fleet import (
    FairShareScheduler,
    FleetPoolSpec,
    FleetSLOSpec,
    FleetSpec,
    ReadoutFleet,
    TenantShare,
    TenantSpec,
)
from repro.pipeline import CalibrationRegistry
from repro.pipeline.cluster import (
    MultiFeedlineRunner,
    SharedShardPool,
)
from repro.serve import (
    BatchingSpec,
    CalibrationSpec,
    ClusterSpec,
    DriftSpec,
    ReadoutService,
    RecalibrationSpec,
    ServeSpec,
    TrafficSpec,
)


def tiny_profile(**overrides) -> Profile:
    """A fast sizing profile for fleet tests (not a named CLI profile)."""
    params = dict(
        name="tiny",
        shots_per_state=10,
        calibration_shots=100,
        nn_epochs=8,
        fnn_epochs=2,
        batch_size=64,
        qec_shots=10,
        qudit_shots=10,
        spectral_max_points=100,
        seed=701,
    )
    params.update(overrides)
    return Profile(**params)


def tiny_serve(
    feedlines: int = 1, workers: int | None = None, **traffic
) -> ServeSpec:
    """A light two-qubit spec for fast tenant sessions."""
    params = dict(shots=40, chunk_size=20, **traffic)
    return ServeSpec(
        traffic=TrafficSpec(**params),
        cluster=ClusterSpec(
            feedlines=feedlines, workers=workers, qubits_per_feedline=2
        ),
        batching=BatchingSpec(batch_size=20),
    )


def tiny_fleet(tenants: dict[str, TenantSpec], **pool) -> FleetSpec:
    params = dict(executor="thread", workers=1, oversubscription=4.0)
    params.update(pool)
    return FleetSpec(pool=FleetPoolSpec(**params), tenants=tenants)


class TestFleetSpecRoundTrip:
    def test_minimal_spec_dict_round_trip(self):
        spec = FleetSpec(tenants={"alpha": TenantSpec()})
        assert FleetSpec.from_dict(spec.to_dict()) == spec

    def test_to_dict_is_json_serializable(self):
        spec = FleetSpec(tenants={"alpha": TenantSpec()})
        payload = json.dumps(spec.to_dict(), allow_nan=False)
        assert FleetSpec.from_dict(json.loads(payload)) == spec

    def test_non_default_spec_round_trips_every_field(self):
        spec = FleetSpec(
            pool=FleetPoolSpec(
                executor="process",
                workers=3,
                oversubscription=1.5,
                registry_dir="/tmp/fleet-reg",
                max_tenants=7,
            ),
            tenants={
                "alpha": TenantSpec(
                    serve=tiny_serve(feedlines=2),
                    slo=FleetSLOSpec(
                        p99_budget_multiplier=250.0,
                        min_share=0.25,
                        max_share=0.75,
                        priority=4,
                    ),
                ),
                "beta.v2": TenantSpec(
                    serve=tiny_serve(seed=99),
                    slo=FleetSLOSpec(priority=2),
                ),
            },
        )
        assert FleetSpec.from_dict(spec.to_dict()) == spec

    def test_file_round_trip(self, tmp_path):
        spec = FleetSpec(tenants={"alpha": TenantSpec(serve=tiny_serve())})
        path = spec.to_file(tmp_path / "fleet.json")
        assert FleetSpec.from_file(path) == spec

    def test_tenant_declaration_order_is_preserved(self):
        spec = FleetSpec(
            tenants={"z": TenantSpec(), "a": TenantSpec(), "m": TenantSpec()}
        )
        assert spec.tenant_names == ("z", "a", "m")
        rebuilt = FleetSpec.from_dict(spec.to_dict())
        assert rebuilt.tenant_names == ("z", "a", "m")

    def test_example_fleet_spec_file_parses(self):
        path = Path(__file__).resolve().parents[1] / "examples"
        spec = FleetSpec.from_file(path / "fleet_spec.json")
        assert spec.tenant_names == ("alpha", "beta")
        assert spec.pool.executor == "process"


class TestFleetSpecValidation:
    def test_from_dict_reports_every_problem_at_once(self):
        with pytest.raises(ConfigurationError) as excinfo:
            FleetSpec.from_dict(
                {
                    "pool": {"executor": "gpu", "workers": 0},
                    "tenants": {
                        "alpha": {
                            "serve": {"traffic": {"shots": 0}},
                            "slo": {"priority": 0, "min_share": 2},
                        },
                        "beta": {"bogus": 1},
                    },
                    "mystery": {},
                }
            )
        message = str(excinfo.value)
        for fragment in (
            "pool.executor",
            "pool.workers",
            "tenants.alpha.serve.traffic.shots",
            "tenants.alpha.slo.priority",
            "tenants.alpha.slo.min_share",
            "tenants.beta.bogus",
            "mystery: unknown section",
        ):
            assert fragment in message, fragment
        assert len(excinfo.value.problems) >= 7

    def test_missing_tenants_section_rejected(self):
        with pytest.raises(ConfigurationError, match="tenants"):
            FleetSpec.from_dict({"pool": {}})

    def test_empty_tenants_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one"):
            FleetSpec(tenants={})

    def test_tenant_name_must_be_registry_slug(self):
        with pytest.raises(ConfigurationError, match="registry slug"):
            FleetSpec(tenants={"-bad/name": TenantSpec()})

    def test_min_shares_must_sum_to_at_most_one(self):
        with pytest.raises(ConfigurationError, match="sum to <= 1"):
            FleetSpec(
                tenants={
                    "a": TenantSpec(slo=FleetSLOSpec(min_share=0.6)),
                    "b": TenantSpec(slo=FleetSLOSpec(min_share=0.6)),
                }
            )

    def test_min_share_above_max_share_rejected(self):
        with pytest.raises(ConfigurationError, match="min_share"):
            FleetSLOSpec(min_share=0.8, max_share=0.5)

    def test_oversubscription_below_one_rejected(self):
        with pytest.raises(ConfigurationError, match="oversubscription"):
            FleetPoolSpec(oversubscription=0.5)

    def test_fleet_rejects_non_spec(self):
        with pytest.raises(ConfigurationError, match="FleetSpec"):
            ReadoutFleet({"tenants": {}})


class TestFairShareScheduler:
    def shares(self, *specs) -> list[TenantShare]:
        return [TenantShare(**spec) for spec in specs]

    def drain_order(self, scheduler, shots=10, limit=100) -> list[str]:
        order = []
        while len(order) < limit:
            request = scheduler.next()
            if request is None:
                break
            scheduler.observe(request.tenant, shots)
            order.append(request.tenant)
        return order

    def test_weighted_ratio_is_deterministic(self):
        scheduler = FairShareScheduler(
            self.shares({"name": "a", "weight": 2}, {"name": "b"})
        )
        for _ in range(6):
            scheduler.submit("a")
            scheduler.submit("b")
        order = self.drain_order(scheduler, limit=6)
        # Stride order over served/weight with declaration-order ties.
        assert order == ["a", "b", "a", "a", "b", "a"]

    def test_min_share_floor_preempts_priorities(self):
        scheduler = FairShareScheduler(
            self.shares(
                {"name": "heavy", "weight": 100},
                {"name": "floored", "weight": 1, "min_share": 0.5},
            )
        )
        for _ in range(4):
            scheduler.submit("heavy")
            scheduler.submit("floored")
        order = self.drain_order(scheduler)
        assert order[0] == "floored", "deficit floor outranks any weight"
        # The floor holds throughout: floored never drops below half.
        assert order.count("floored") == 4

    def test_starvation_free_under_extreme_weights(self):
        scheduler = FairShareScheduler(
            self.shares(
                {"name": "vip", "weight": 1000},
                {"name": "low", "weight": 1, "min_share": 0.05},
            )
        )
        for _ in range(20):
            scheduler.submit("vip")
        scheduler.submit("low")
        order = self.drain_order(scheduler)
        assert "low" in order[:2], "floored tenant served near the front"

    def test_max_share_cap_is_work_conserving(self):
        scheduler = FairShareScheduler(
            self.shares({"name": "capped", "weight": 1, "max_share": 0.5})
        )
        for _ in range(3):
            scheduler.submit("capped")
        # Alone with work, a capped tenant still runs: capacity is
        # never idled to enforce a cap.
        assert self.drain_order(scheduler) == ["capped"] * 3

    def test_max_share_passes_over_while_others_have_work(self):
        scheduler = FairShareScheduler(
            self.shares(
                {"name": "capped", "weight": 10, "max_share": 0.4},
                {"name": "other", "weight": 1},
            )
        )
        for _ in range(5):
            scheduler.submit("capped")
            scheduler.submit("other")
        order = self.drain_order(scheduler, limit=10)
        # However heavy, 'capped' cannot exceed ~40% of served shots
        # while 'other' has pending work.
        assert order.count("capped") <= 5
        assert order.count("other") >= 5

    def test_queue_is_fifo_within_a_tenant(self):
        scheduler = FairShareScheduler(self.shares({"name": "a"}))
        for seed in (11, 22, 33):
            scheduler.submit("a", seed=seed)
        seeds = []
        while True:
            request = scheduler.next()
            if request is None:
                break
            seeds.append(request.seed)
        assert seeds == [11, 22, 33]

    def test_eligible_filter_restricts_choice(self):
        scheduler = FairShareScheduler(
            self.shares({"name": "a", "weight": 5}, {"name": "b"})
        )
        scheduler.submit("a")
        scheduler.submit("b")
        request = scheduler.next(eligible={"b"})
        assert request.tenant == "b"
        assert scheduler.next(eligible=set()) is None

    def test_pending_and_served_accounting(self):
        scheduler = FairShareScheduler(
            self.shares({"name": "a"}, {"name": "b"})
        )
        scheduler.submit("a")
        scheduler.submit("a")
        assert scheduler.pending() == 2
        assert scheduler.pending("a") == 2
        assert scheduler.pending("b") == 0
        request = scheduler.next()
        scheduler.observe(request.tenant, 40)
        assert scheduler.pending("a") == 1
        assert scheduler.served() == {"a": 40, "b": 0}

    def test_rejects_duplicates_empty_and_bad_weight(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            FairShareScheduler(self.shares({"name": "a"}, {"name": "a"}))
        with pytest.raises(ConfigurationError, match="at least one"):
            FairShareScheduler([])
        with pytest.raises(ConfigurationError, match="weight"):
            FairShareScheduler(self.shares({"name": "a", "weight": 0}))

    def test_unknown_tenant_submit_rejected(self):
        scheduler = FairShareScheduler(self.shares({"name": "a"}))
        with pytest.raises(ConfigurationError, match="unknown tenant"):
            scheduler.submit("ghost")


class TestSharedShardPool:
    def test_capacity_and_lease_accounting(self):
        with SharedShardPool("thread", 2, oversubscription=2.0) as pool:
            assert pool.capacity == 4
            first = pool.lease("a", 2)
            second = pool.lease("b", 2)
            assert pool.leased_workers == 4
            assert pool.n_leases == 2
            with pytest.raises(
                ConfigurationError, match="already claimed"
            ):
                pool.lease("c", 1)
            first.close()
            assert pool.leased_workers == 2
            third = pool.lease("c", 1)
            assert third.workers == 1
            second.close()
            third.close()
            assert pool.n_leases == 0

    def test_demand_beyond_workers_rejected_outright(self):
        with SharedShardPool("thread", 1, oversubscription=8.0) as pool:
            with pytest.raises(ConfigurationError, match="never be"):
                pool.lease("greedy", 4)

    def test_closed_pool_rejects_leases(self):
        pool = SharedShardPool("thread", 1)
        pool.close()
        with pytest.raises(ConfigurationError, match="closed"):
            pool.lease("late", 1)
        pool.close()  # idempotent

    def test_lease_map_windows_to_leased_workers(self):
        # The backend has 2 workers but the lease holds 1: no more than
        # one task of this lease may ever run concurrently.
        with SharedShardPool("thread", 2) as pool:
            lease = pool.lease("narrow", 1)
            state = {"active": 0, "peak": 0}
            gate = threading.Lock()

            def tracked(task):
                with gate:
                    state["active"] += 1
                    state["peak"] = max(state["peak"], state["active"])
                time.sleep(0.01)
                with gate:
                    state["active"] -= 1
                return task

            assert lease.map(tracked, list(range(4))) == [0, 1, 2, 3]
            assert state["peak"] == 1

    def test_released_lease_map_raises(self):
        with SharedShardPool("thread", 1) as pool:
            lease = pool.lease("a", 1)
            lease.close()
            with pytest.raises(ConfigurationError, match="released"):
                lease.map(lambda t: t, [1])

    def test_runner_close_leaves_shared_pool_usable(self):
        from repro.physics.device import multi_feedline_chips

        chips = multi_feedline_chips(2, n_qubits=2, trace_len=120)
        with SharedShardPool("thread", 1) as pool:
            lease = pool.lease("tenant", 1)
            runner = MultiFeedlineRunner(
                chips, tiny_profile(), pool=lease
            )
            assert runner.executor == pool.executor
            runner.close()
            # The runner never tears down an injected lease's backend.
            assert lease.map(lambda t: t * 2, [1, 2]) == [2, 4]
            lease.close()


class TestClusterReportPlacement:
    def test_report_records_feedline_placement(self, tmp_path):
        spec = ServeSpec(
            traffic=TrafficSpec(shots=20, chunk_size=10),
            cluster=ClusterSpec(
                feedlines=2, executor="serial", qubits_per_feedline=2
            ),
            batching=BatchingSpec(batch_size=10),
            calibration=CalibrationSpec(
                registry_dir=str(tmp_path / "registry")
            ),
        )
        with ReadoutService(spec, profile=tiny_profile()) as service:
            report = service.run()
        assert set(report.placement) == {"feedline-0", "feedline-1"}
        assert sorted(report.placement.values()) == [0, 1]
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["placement"] == report.placement


class TestServiceStatsDriftColumns:
    def test_format_table_has_drift_alarm_recal_columns(self):
        from repro.pipeline import PipelineReport
        from repro.serve import ServiceStats

        stats = ServiceStats()
        quiet = PipelineReport(
            n_shots=10,
            n_batches=1,
            wall_seconds=0.1,
            shots_per_second=100.0,
            stage_summaries={},
            accuracy=0.9,
            calibration_cached=True,
        )
        stats.record(quiet, 0.1)
        noisy = PipelineReport(
            n_shots=10,
            n_batches=1,
            wall_seconds=0.1,
            shots_per_second=100.0,
            stage_summaries={},
            accuracy=0.8,
            calibration_cached=True,
            drift_score=0.123,
            drift_alarm=True,
        )
        stats.record(noisy, 0.1, recalibrated=True)
        text = stats.format_table()
        header = text.splitlines()[1]
        for column in ("drift", "alarm", "recal"):
            assert column in header, column
        rows = text.splitlines()[3:5]
        assert rows[0].split()[-3:] == ["-", "-", "-"]
        assert rows[1].split()[-3:] == ["0.123", "ALARM", "yes"]


class TestRunFailureCleanup:
    def test_failed_run_releases_pool_and_temp_registry(self, monkeypatch):
        # Satellite of the failed-warm contract: an exception escaping
        # mid-run must release the session like a failed warm() does.
        spec = ServeSpec(
            traffic=TrafficSpec(shots=20, chunk_size=10),
            cluster=ClusterSpec(
                feedlines=2, executor="thread", qubits_per_feedline=2
            ),
            batching=BatchingSpec(batch_size=10),
        )
        service = ReadoutService(spec, profile=tiny_profile())
        service.warm()
        private_root = service.registry_dir
        assert private_root is not None and Path(private_root).is_dir()

        def exploding_run(runner_self, *args, **kwargs):
            raise DataError("feedline shard died mid-run")

        monkeypatch.setattr(MultiFeedlineRunner, "run", exploding_run)
        with pytest.raises(DataError):
            service.run()
        assert service._runner is None
        assert service.registry_dir is None
        assert not Path(private_root).exists()

    def test_bad_run_args_do_not_tear_down_the_session(self, tmp_path):
        spec = ServeSpec(
            traffic=TrafficSpec(shots=20, chunk_size=10),
            cluster=ClusterSpec(qubits_per_feedline=2),
            batching=BatchingSpec(batch_size=10),
            calibration=CalibrationSpec(
                registry_dir=str(tmp_path / "registry")
            ),
        )
        with ReadoutService(spec, profile=tiny_profile()) as service:
            service.warm()
            with pytest.raises(ConfigurationError, match="shots"):
                service.run(shots=0)
            # Argument validation is not a serving failure: the session
            # stays warm and keeps serving.
            assert service.run().n_shots == 20


def _has_fork() -> bool:
    try:
        multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX
        return False
    return True


class TestSharedRegistrySessions:
    """Two independent sessions over one on-disk registry root."""

    def shared_spec(self, root: Path, **traffic) -> ServeSpec:
        params = dict(shots=40, chunk_size=20, seed=4242)
        params.update(traffic)
        return ServeSpec(
            traffic=TrafficSpec(**params),
            cluster=ClusterSpec(qubits_per_feedline=2),
            batching=BatchingSpec(batch_size=20),
            calibration=CalibrationSpec(registry_dir=str(root)),
        )

    def test_concurrent_thread_sessions_fit_once(
        self, tmp_path, monkeypatch
    ):
        fits: list[int] = []
        original_fit = MLRDiscriminator.fit

        def counting_fit(disc, corpus, indices):
            fits.append(1)
            time.sleep(0.2)  # widen the cold-fit race window
            return original_fit(disc, corpus, indices)

        monkeypatch.setattr(MLRDiscriminator, "fit", counting_fit)
        spec = self.shared_spec(tmp_path / "registry")
        services = [
            ReadoutService(spec, profile=tiny_profile()) for _ in range(2)
        ]
        barrier = threading.Barrier(2)
        errors: list[BaseException] = []

        def warm(service):
            try:
                barrier.wait(timeout=30)
                service.warm()
            except BaseException as exc:  # pragma: no cover - surfaced
                errors.append(exc)

        threads = [
            threading.Thread(target=warm, args=(service,))
            for service in services
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors
        try:
            assert len(fits) == 1, (
                "two sessions racing one cold key must fit exactly once"
            )
            # Both warmed sessions serve identical seeded traffic.
            reports = [service.run() for service in services]
            counts = [r.assignment_counts for r in reports]
            assert counts[0] == counts[1]
        finally:
            for service in services:
                service.close()

    @pytest.mark.skipif(not _has_fork(), reason="needs fork start method")
    def test_concurrent_fork_sessions_fit_once(self, tmp_path):
        root = tmp_path / "registry"
        spec_file = self.shared_spec(root).to_file(tmp_path / "spec.json")

        def worker(index: int) -> None:
            ready = tmp_path / f"ready-{index}"
            ready.touch()
            deadline = time.monotonic() + 20.0
            while not all(
                (tmp_path / f"ready-{i}").exists() for i in range(2)
            ):
                if time.monotonic() > deadline:  # pragma: no cover
                    raise RuntimeError("barrier timed out")
                time.sleep(0.005)
            spec = ServeSpec.from_file(spec_file)
            with ReadoutService(spec, profile=tiny_profile()) as service:
                report = service.run()
            out = {
                "cold_fits": service.stats.cold_fits,
                "assignment_counts": report.assignment_counts,
            }
            (tmp_path / f"out-{index}.json").write_text(json.dumps(out))

        ctx = multiprocessing.get_context("fork")
        children = [
            ctx.Process(target=worker, args=(index,)) for index in range(2)
        ]
        for child in children:
            child.start()
        for child in children:
            child.join(timeout=300)
        try:
            assert all(child.exitcode == 0 for child in children)
        finally:
            for child in children:
                if child.is_alive():  # pragma: no cover - hang guard
                    child.kill()
        outs = [
            json.loads((tmp_path / f"out-{i}.json").read_text())
            for i in range(2)
        ]
        assert sum(out["cold_fits"] for out in outs) == 1, (
            "flock dedup: exactly one process pays the cold fit"
        )
        assert outs[0]["assignment_counts"] == outs[1]["assignment_counts"]

    def test_recal_by_one_session_never_changes_the_other(self, tmp_path):
        root = tmp_path / "registry"
        quiet_spec = self.shared_spec(root)
        with ReadoutService(
            quiet_spec, profile=tiny_profile()
        ) as quiet:
            before = quiet.run().assignment_counts
            assert quiet.artifact_versions() == {"feedline-0": 0}

            # A second session on the same key drifts, alarms, and hot
            # recalibrates: version 1 lands in the shared registry.
            noisy_spec = ServeSpec(
                traffic=TrafficSpec(shots=60, chunk_size=30),
                cluster=ClusterSpec(qubits_per_feedline=2),
                batching=BatchingSpec(batch_size=30),
                calibration=CalibrationSpec(registry_dir=str(root)),
                drift=DriftSpec(if_detune_ghz_per_kshot=8e-5),
                recalibration=RecalibrationSpec(
                    enabled=True,
                    threshold=1e-6,
                    min_shots=0,
                    max_recalibrations=1,
                ),
            )
            with ReadoutService(
                noisy_spec, profile=tiny_profile()
            ) as noisy:
                noisy.run()
                assert noisy.stats.recalibrations == 1
                assert noisy.artifact_versions() == {"feedline-0": 1}

            versions_on_disk = {
                key.version for key in CalibrationRegistry(root).keys()
            }
            assert versions_on_disk == {0, 1}
            # The warm first session is untouched mid-run: same served
            # artifact version, bit-identical seeded traffic results.
            assert quiet.artifact_versions() == {"feedline-0": 0}
            assert quiet.run().assignment_counts == before


class TestReadoutFleet:
    def test_warm_submit_drain_lifecycle(self):
        spec = tiny_fleet(
            {
                "alpha": TenantSpec(serve=tiny_serve()),
                "beta": TenantSpec(serve=tiny_serve()),
            }
        )
        with ReadoutFleet(spec, profile=tiny_profile()) as fleet:
            assert fleet.tenants == ("alpha", "beta")
            root = Path(fleet.registry_dir)
            assert root.is_dir()
            for name in fleet.tenants:
                fleet.submit(name)
            records = fleet.drain()
            assert [r.tenant for r in records] == ["alpha", "beta"]
            assert fleet.stats.completed_runs == 2
            assert fleet.pending() == 0
            # Namespaced artifacts: each tenant owns a disjoint device
            # directory under the one shared root.
            prefixes = {
                d.name.split(".")[0] for d in root.iterdir() if d.is_dir()
            }
            assert prefixes == {"alpha", "beta"}
        assert not root.exists(), "fleet-private registry cleaned on close"

    def test_admission_rejects_demand_beyond_pool(self):
        spec = tiny_fleet(
            {
                "fits": TenantSpec(serve=tiny_serve()),
                "greedy": TenantSpec(
                    serve=tiny_serve(feedlines=4, workers=4)
                ),
            }
        )
        with ReadoutFleet(spec, profile=tiny_profile()) as fleet:
            assert fleet.tenants == ("fits",)
            assert fleet.stats.rejected == ("greedy",)
            reason = fleet.stats.tenants["greedy"].rejection_reason
            assert "4 workers" in reason
            with pytest.raises(ConfigurationError, match="rejected"):
                fleet.submit("greedy")
            with pytest.raises(ConfigurationError, match="unknown tenant"):
                fleet.submit("ghost")
            table = fleet.stats.format_table()
            assert "rejected" in table and "greedy" in table

    def test_max_tenants_caps_admission(self):
        spec = tiny_fleet(
            {
                "a": TenantSpec(serve=tiny_serve()),
                "b": TenantSpec(serve=tiny_serve()),
            },
            max_tenants=1,
        )
        with ReadoutFleet(spec, profile=tiny_profile()) as fleet:
            assert fleet.tenants == ("a",)
            assert "max_tenants" in (
                fleet.stats.tenants["b"].rejection_reason
            )

    def test_no_admissible_tenant_raises_with_reasons(self):
        spec = tiny_fleet(
            {"greedy": TenantSpec(serve=tiny_serve(feedlines=4, workers=4))}
        )
        fleet = ReadoutFleet(spec, profile=tiny_profile())
        with pytest.raises(ConfigurationError, match="no tenant"):
            fleet.warm()
        assert fleet.registry_dir is None, "failed warm leaks nothing"

    def test_assignment_counts_bit_identical_alone_vs_in_fleet(
        self, tmp_path
    ):
        serve_spec = ServeSpec(
            traffic=TrafficSpec(shots=40, chunk_size=20, seed=2026),
            cluster=ClusterSpec(qubits_per_feedline=2),
            batching=BatchingSpec(batch_size=20),
            calibration=CalibrationSpec(
                registry_dir=str(tmp_path / "solo-registry")
            ),
        )
        with ReadoutService(
            serve_spec, profile=tiny_profile()
        ) as solo:
            alone = solo.run().assignment_counts
        spec = tiny_fleet(
            {
                "target": TenantSpec(serve=serve_spec),
                "neighbor": TenantSpec(serve=tiny_serve(seed=777)),
            }
        )
        with ReadoutFleet(spec, profile=tiny_profile()) as fleet:
            fleet.submit("neighbor")
            fleet.drain()
            in_fleet = fleet.service("target").run().assignment_counts
        assert in_fleet == alone, (
            "tenant traffic must not depend on fleet co-residents"
        )

    def test_tenant_recal_never_alters_other_tenants_artifacts(self):
        noisy_serve = ServeSpec(
            traffic=TrafficSpec(shots=60, chunk_size=30),
            cluster=ClusterSpec(qubits_per_feedline=2),
            batching=BatchingSpec(batch_size=30),
            drift=DriftSpec(if_detune_ghz_per_kshot=8e-5),
            recalibration=RecalibrationSpec(
                enabled=True,
                threshold=1e-6,
                min_shots=0,
                max_recalibrations=1,
            ),
        )
        spec = tiny_fleet(
            {
                "quiet": TenantSpec(serve=tiny_serve(seed=31)),
                "noisy": TenantSpec(serve=noisy_serve),
            }
        )
        with ReadoutFleet(spec, profile=tiny_profile()) as fleet:
            fleet.submit("quiet")
            fleet.drain()
            before = fleet.service("quiet").run().assignment_counts
            fleet.submit("noisy")
            fleet.drain()
            assert fleet.stats.tenants["noisy"].recalibrations == 1
            assert fleet.service("noisy").artifact_versions() == {
                "feedline-0": 1
            }
            # The other tenant's namespace is untouched: same version,
            # bit-identical seeded results after the neighbor's recal.
            assert fleet.service("quiet").artifact_versions() == {
                "feedline-0": 0
            }
            assert fleet.service("quiet").run().assignment_counts == before
            registry = CalibrationRegistry(fleet.registry_dir)
            quiet_versions = {
                key.version
                for key in registry.keys()
                if key.device.startswith("quiet.")
            }
            assert quiet_versions == {0}

    def test_oversubscribed_drain_throttles_but_never_starves(self):
        spec = tiny_fleet(
            {
                "high": TenantSpec(
                    serve=tiny_serve(), slo=FleetSLOSpec(priority=4)
                ),
                "mid": TenantSpec(
                    serve=tiny_serve(), slo=FleetSLOSpec(priority=2)
                ),
                "low": TenantSpec(
                    serve=tiny_serve(),
                    slo=FleetSLOSpec(priority=1, min_share=0.1),
                ),
            }
        )
        with ReadoutFleet(spec, profile=tiny_profile()) as fleet:
            for _ in range(3):
                for name in fleet.tenants:
                    fleet.submit(name)
            records = fleet.drain(max_runs=5)
            assert len(records) == 5
            assert fleet.pending() == 4, "budget leaves the rest queued"
            runs = {
                name: fleet.stats.tenants[name].n_runs
                for name in fleet.tenants
            }
            assert runs["high"] >= runs["mid"] >= runs["low"] >= 1
            # The floor dispatched 'low' first, so its queue wait stays
            # bounded by the drain that served it.
            low = fleet.stats.tenants["low"]
            assert (
                low.max_queue_wait_seconds
                <= fleet.stats.drain_wall_seconds + 1.0
            )
            # A later drain serves the remainder: throttled, not lost.
            fleet.drain()
            assert fleet.pending() == 0
            assert fleet.stats.completed_runs == 9

    def test_stats_to_dict_is_strict_json(self):
        spec = tiny_fleet(
            {
                "served": TenantSpec(serve=tiny_serve()),
                "greedy": TenantSpec(
                    serve=tiny_serve(feedlines=4, workers=4)
                ),
            }
        )
        with ReadoutFleet(spec, profile=tiny_profile()) as fleet:
            fleet.submit("served")
            fleet.drain()
            payload = json.loads(
                json.dumps(fleet.stats.to_dict(), allow_nan=False)
            )
        assert payload["completed_runs"] == 1
        assert payload["admitted"] == ["served"]
        assert payload["admission_rejections"][0]["tenant"] == "greedy"
        tenant = payload["tenants"]["served"]
        assert tenant["slo_violation_fraction"] == 0.0
        assert tenant["runs"][0]["slo_violation"] is False
        # The rejected tenant serializes null percentiles, never NaN.
        assert payload["tenants"]["greedy"]["p99_per_shot_ns"] is None

    def test_close_then_rewarm_readmits(self):
        spec = tiny_fleet({"solo": TenantSpec(serve=tiny_serve())})
        fleet = ReadoutFleet(spec, profile=tiny_profile())
        fleet.submit("solo")
        fleet.drain()
        fleet.close()
        fleet.submit("solo")
        fleet.drain()
        fleet.close()
        assert fleet.stats.tenants["solo"].n_runs == 2


class TestFleetCLI:
    @pytest.fixture
    def fleet_spec_file(self, tmp_path):
        serve = ServeSpec(
            traffic=TrafficSpec(shots=60, chunk_size=30),
            cluster=ClusterSpec(qubits_per_feedline=2),
            batching=BatchingSpec(batch_size=30),
            calibration=CalibrationSpec(profile="quick"),
        )
        spec = FleetSpec(
            pool=FleetPoolSpec(
                executor="thread",
                workers=1,
                oversubscription=2.0,
                registry_dir=str(tmp_path / "registry"),
            ),
            tenants={
                "alpha": TenantSpec(
                    serve=serve, slo=FleetSLOSpec(priority=2)
                ),
                "beta": TenantSpec(serve=serve),
            },
        )
        return str(spec.to_file(tmp_path / "fleet.json"))

    def test_fleet_runs_and_writes_json(
        self, capsys, tmp_path, fleet_spec_file
    ):
        out_path = tmp_path / "fleet-session.json"
        code = cli.main(
            [
                "fleet",
                "--spec",
                fleet_spec_file,
                "--json",
                str(out_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "readout fleet" in out
        assert "warmed in" in out
        payload = json.loads(out_path.read_text())
        assert set(payload) == {"spec", "fleet"}
        assert FleetSpec.from_dict(payload["spec"]).tenant_names == (
            "alpha",
            "beta",
        )
        fleet = payload["fleet"]
        assert fleet["admitted"] == ["alpha", "beta"]
        assert fleet["completed_runs"] == 2
        for name in ("alpha", "beta"):
            tenant = fleet["tenants"][name]
            assert tenant["n_runs"] == 1
            assert tenant["runs"][0]["n_shots"] == 60
            assert "slo_violation_fraction" in tenant

    def test_fleet_tenant_filter_and_unknown_name(
        self, capsys, tmp_path, fleet_spec_file
    ):
        out_path = tmp_path / "filtered.json"
        code = cli.main(
            [
                "fleet",
                "--spec",
                fleet_spec_file,
                "--tenants",
                "beta",
                "--json",
                str(out_path),
            ]
        )
        assert code == 0
        payload = json.loads(out_path.read_text())
        assert payload["fleet"]["tenants"]["beta"]["n_runs"] == 1
        assert payload["fleet"]["tenants"]["alpha"]["n_runs"] == 0
        with pytest.raises(ConfigurationError, match="ghost"):
            cli.main(
                ["fleet", "--spec", fleet_spec_file, "--tenants", "ghost"]
            )

    def test_fleet_rejects_bad_runs(self, fleet_spec_file):
        with pytest.raises(ConfigurationError, match="runs"):
            cli.main(
                ["fleet", "--spec", fleet_spec_file, "--runs", "0"]
            )

    def test_fleet_help_exits_0(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli.main(["fleet", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "--spec" in out
        assert "--tenants" in out

    def test_list_mentions_fleet(self, capsys):
        assert cli.main(["list"]) == 0
        assert "fleet" in capsys.readouterr().out
