"""The ``repro lint`` subcommand: contract-aware static analysis.

::

    repro lint                       # lint src/ with every rule
    repro lint src/repro/serve       # specific paths
    repro lint --rules fit-once,broad-except src/
    repro lint --json lint.json src/
    repro lint --list-rules
    repro lint --list-rules --json      # machine-readable rule schema

Exit status: 0 when clean, 1 when findings remain (CI gates on it),
2 on usage errors (including an unknown ``--rules`` name) — the
compiler convention.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.checker import lint_paths, rule_names
from repro.exceptions import ConfigurationError

__all__ = ["build_lint_parser", "run_lint"]


def build_lint_parser() -> argparse.ArgumentParser:
    """Parser for the ``repro lint`` subcommand (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "Check source trees against the project's serving-stack "
            "contracts (fit-once calibration, frozen specs, strict-JSON "
            "finiteness, artifact-only process hand-off, exception "
            "hygiene, __all__ consistency, lock-guarded shared state, "
            "no blocking calls under locks, no hidden hot-path copies). "
            "Suppress accepted findings per line with "
            "'# repro: allow(<rule>) <reason>'."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help=(
            "files or directory trees to lint (default: ./src when it "
            "exists, else .)"
        ),
    )
    parser.add_argument(
        "--rules",
        default=None,
        metavar="RULE[,RULE...]",
        help=(
            "comma-separated subset of rules to run "
            f"(default: all — {', '.join(rule_names())})"
        ),
    )
    parser.add_argument(
        "--json",
        nargs="?",
        const="-",
        default=None,
        metavar="PATH",
        help=(
            "emit findings as a JSON record instead of text; to stdout "
            "with no PATH"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help=(
            "list registered rules with their descriptions and exit "
            "(with --json, as a machine-readable schema)"
        ),
    )
    return parser


def run_lint(argv: list[str]) -> int:
    """Entry point for ``repro lint``; returns the process exit code."""
    from repro.analysis.checker import get_rules

    args = build_lint_parser().parse_args(argv)
    if args.list_rules:
        checkers = get_rules()
        if args.json is not None:
            record = {
                "n_rules": len(checkers),
                "rules": [
                    {"name": checker.rule, "description": checker.description}
                    for checker in checkers
                ],
            }
            payload = json.dumps(record, indent=2)
            if args.json == "-":
                print(payload)
            else:
                Path(args.json).write_text(payload + "\n")
                print(f"rule schema written to {args.json}")
        else:
            for checker in checkers:
                print(f"{checker.rule:18s} {checker.description}")
        return 0
    paths = args.paths or (["src"] if Path("src").is_dir() else ["."])
    rules = (
        None
        if args.rules is None
        else [name.strip() for name in args.rules.split(",") if name.strip()]
    )
    try:
        findings = lint_paths(paths, rules)
    except ConfigurationError as exc:
        # Usage error, not a lint verdict: --rules named something the
        # registry doesn't know. The message names the unknown rule.
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    if args.json is not None:
        record = {
            "paths": [str(p) for p in paths],
            "rules": list(rules) if rules is not None else list(rule_names()),
            "n_findings": len(findings),
            "findings": [finding.to_dict() for finding in findings],
        }
        payload = json.dumps(record, indent=2)
        if args.json == "-":
            print(payload)
        else:
            Path(args.json).write_text(payload + "\n")
            print(f"lint record written to {args.json}")
    else:
        for finding in findings:
            print(finding.format())
    n_files = len(
        {finding.path for finding in findings}
    )
    summary = (
        "lint: clean"
        if not findings
        else f"lint: {len(findings)} finding(s) in {n_files} file(s)"
    )
    print(summary)
    return 1 if findings else 0
