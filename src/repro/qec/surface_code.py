"""Rotated surface code layout.

Data qubits sit on a d x d grid; stabilizer ancillas sit on the plaquette
lattice between them — (d-1)^2 interior weight-4 plaquettes plus 2(d-1)
boundary weight-2 plaquettes, for the standard d^2 - 1 stabilizers. X-type
plaquettes terminate on the top/bottom boundaries and Z-type on the
left/right, with the usual checkerboard coloring in the interior.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError

__all__ = ["Stabilizer", "RotatedSurfaceCode"]


@dataclass(frozen=True)
class Stabilizer:
    """One stabilizer generator of the code.

    Attributes
    ----------
    index:
        Ancilla index in [0, d^2 - 1).
    pauli_type:
        ``"X"`` or ``"Z"``.
    data_qubits:
        Indices of the 2 or 4 data qubits the plaquette touches, in gate
        order.
    position:
        Plaquette center (row, col) in data-grid coordinates.
    """

    index: int
    pauli_type: str
    data_qubits: tuple[int, ...]
    position: tuple[float, float]

    @property
    def weight(self) -> int:
        return len(self.data_qubits)


class RotatedSurfaceCode:
    """Rotated surface code of odd distance ``d``.

    Provides the data/ancilla adjacency that the leakage simulator and the
    ERASER policy consume.
    """

    def __init__(self, distance: int) -> None:
        if distance < 3 or distance % 2 == 0:
            raise ConfigurationError(
                f"distance must be an odd integer >= 3, got {distance}"
            )
        self.distance = distance
        self.n_data = distance * distance
        self.stabilizers = self._build_stabilizers()
        self.n_ancilla = len(self.stabilizers)
        self._data_to_stabs: dict[int, list[int]] = {
            q: [] for q in range(self.n_data)
        }
        for stab in self.stabilizers:
            for q in stab.data_qubits:
                self._data_to_stabs[q].append(stab.index)

    def data_index(self, row: int, col: int) -> int:
        """Data qubit index at grid position (row, col)."""
        d = self.distance
        if not (0 <= row < d and 0 <= col < d):
            raise ConfigurationError(f"({row}, {col}) outside the {d}x{d} grid")
        return row * d + col

    def _plaquette_type(self, row: int, col: int) -> str:
        return "X" if (row + col) % 2 == 0 else "Z"

    def _keep_plaquette(self, row: int, col: int) -> bool:
        d = self.distance
        interior = 0 <= row <= d - 2 and 0 <= col <= d - 2
        if interior:
            return True
        # Exactly one of row/col is outside for boundary plaquettes;
        # corners (both outside) are never stabilizers.
        row_out = row < 0 or row > d - 2
        col_out = col < 0 or col > d - 2
        if row_out and col_out:
            return False
        if row_out:
            # Top/bottom boundaries host X-type plaquettes only.
            return self._plaquette_type(row, col) == "X" and 0 <= col <= d - 2
        # Left/right boundaries host Z-type plaquettes only.
        return self._plaquette_type(row, col) == "Z" and 0 <= row <= d - 2

    def _build_stabilizers(self) -> list[Stabilizer]:
        d = self.distance
        stabilizers: list[Stabilizer] = []
        index = 0
        for row in range(-1, d):
            for col in range(-1, d):
                if not self._keep_plaquette(row, col):
                    continue
                corners = [
                    (row, col),
                    (row, col + 1),
                    (row + 1, col),
                    (row + 1, col + 1),
                ]
                data = tuple(
                    self.data_index(r, c)
                    for r, c in corners
                    if 0 <= r < d and 0 <= c < d
                )
                stabilizers.append(
                    Stabilizer(
                        index=index,
                        pauli_type=self._plaquette_type(row, col),
                        data_qubits=data,
                        position=(row + 0.5, col + 0.5),
                    )
                )
                index += 1
        return stabilizers

    @property
    def x_stabilizers(self) -> list[Stabilizer]:
        """All X-type stabilizers."""
        return [s for s in self.stabilizers if s.pauli_type == "X"]

    @property
    def z_stabilizers(self) -> list[Stabilizer]:
        """All Z-type stabilizers."""
        return [s for s in self.stabilizers if s.pauli_type == "Z"]

    def stabilizers_of_data(self, data_qubit: int) -> list[int]:
        """Stabilizer indices adjacent to a data qubit."""
        if not 0 <= data_qubit < self.n_data:
            raise ConfigurationError(
                f"data_qubit must be in [0, {self.n_data})"
            )
        return list(self._data_to_stabs[data_qubit])

    def overlap(self, a: Stabilizer, b: Stabilizer) -> int:
        """Number of shared data qubits between two stabilizers."""
        return len(set(a.data_qubits) & set(b.data_qubits))
