"""Fig 5(b) bench: mean accuracy vs readout duration.

Paper: accuracy is ~flat from 1000 ns down to 800 ns (enabling the 20%
readout-time cut) and degrades at shorter windows — including in the
no-retraining (kernel truncation) mode.
"""

from benchmarks.conftest import run_once
from repro.experiments.fig5b import run_fig5b


def test_fig5b_duration_sweep(benchmark, profile):
    result = run_once(benchmark, run_fig5b, profile)
    print("\n" + result.format_table())
    full = result.accuracy_at(1000)
    at_800 = result.accuracy_at(800)
    at_500 = result.accuracy_at(500)
    # 20% shorter readout costs little...
    assert at_800 > full - 0.02
    # ...but going to half the window costs visibly more.
    assert full - at_500 > full - at_800
    # The no-retraining mode also holds at 800 ns.
    truncated_800 = result.truncated_accuracy[result.durations_ns.index(800)]
    assert truncated_800 > full - 0.03
