"""Streaming readout runtime: online, batched, instrumented discrimination.

The experiment runners in :mod:`repro.experiments` are offline — one
corpus, one table. This package is the *serving* counterpart the paper's
online-decoding premise implies:

- :mod:`repro.pipeline.source` — :class:`TraceSource` streams shots in
  bounded chunks from the simulator or a saved corpus.
- :mod:`repro.pipeline.batching` — :class:`MicroBatcher` re-chunks the
  stream into fixed-size dispatch batches.
- :mod:`repro.pipeline.stages` — vectorized demod → matched-filter →
  per-qubit-NN stages, channel-sharded across ``concurrent.futures``
  workers.
- :mod:`repro.pipeline.registry` — :class:`CalibrationRegistry` persists
  fitted artifacts (kernels, scalers, NN weights) by
  (device, qubit, profile) so warm runs skip retraining.
- :mod:`repro.pipeline.sink` — backpressure-aware sinks; the default
  feeds ERASER+M leakage speculation in :mod:`repro.qec.eraser`.
- :mod:`repro.pipeline.metrics` — per-stage p50/p99 latency, throughput,
  and the measured-vs-FPGA cycle-budget check.
- :mod:`repro.pipeline.runner` — :class:`ReadoutPipeline` and the
  turnkey :func:`run_streaming_pipeline` used by ``repro pipeline``.
"""

from repro.pipeline.batching import MicroBatcher
from repro.pipeline.metrics import LatencyStats, PipelineReport, StageTimings
from repro.pipeline.registry import CalibrationKey, CalibrationRegistry, PruneReport
from repro.pipeline.runner import (
    PipelineConfig,
    ReadoutPipeline,
    fit_or_load_discriminator,
    run_streaming_pipeline,
)
from repro.pipeline.sink import (
    CollectingSink,
    EraserSpeculationSink,
    QueueingSink,
    ResultSink,
)
from repro.pipeline.source import (
    CorpusTraceSource,
    ShotChunk,
    SimulatorTraceSource,
    TraceSource,
)
from repro.pipeline.stages import BatchDiscriminationEngine, BatchResult

__all__ = [
    "ShotChunk",
    "TraceSource",
    "SimulatorTraceSource",
    "CorpusTraceSource",
    "MicroBatcher",
    "BatchDiscriminationEngine",
    "BatchResult",
    "CalibrationKey",
    "CalibrationRegistry",
    "PruneReport",
    "ResultSink",
    "CollectingSink",
    "QueueingSink",
    "EraserSpeculationSink",
    "LatencyStats",
    "StageTimings",
    "PipelineReport",
    "PipelineConfig",
    "ReadoutPipeline",
    "fit_or_load_discriminator",
    "run_streaming_pipeline",
]
