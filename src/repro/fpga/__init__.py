"""Analytic FPGA implementation models.

The paper reports FPGA results from hls4ml + Vivado HLS on a Xilinx Zynq
MPSoC (xczu7ev) and power from Synopsys DC at 45 nm. Without those tools,
this package provides documented analytic models:

- :mod:`repro.fpga.fixed_point` — fixed-point quantization, plus a
  bit-accurate quantized-inference emulator in :mod:`repro.fpga.hls_model`.
- :mod:`repro.fpga.resources` — LUT/FF/BRAM/DSP estimates for a dense-NN
  datapath. LUT and FF coefficients are *calibrated against the paper's
  three published design points* (FNN, HERQULES, OURS), so ratios between
  architectures reproduce the published ratios and ablations interpolate
  sensibly.
- :mod:`repro.fpga.latency` — pipeline latency (the paper's design runs in
  5 cycles at 1 GHz).
- :mod:`repro.fpga.power` — energy/MAC + static power, calibrated to the
  paper's 1.561 mW operating point.
"""

from repro.fpga.devices import FPGADevice, XCZU7EV
from repro.fpga.fixed_point import FixedPointFormat
from repro.fpga.hls_model import HLSNetworkModel
from repro.fpga.latency import pipeline_latency_cycles, pipeline_latency_ns
from repro.fpga.power import estimate_power_mw
from repro.fpga.resources import ResourceEstimate, estimate_network_resources

__all__ = [
    "FPGADevice",
    "XCZU7EV",
    "FixedPointFormat",
    "ResourceEstimate",
    "estimate_network_resources",
    "pipeline_latency_cycles",
    "pipeline_latency_ns",
    "estimate_power_mw",
    "HLSNetworkModel",
]
