"""Declarative fleet configuration: many tenants, one substrate.

:class:`FleetSpec` scales the :class:`~repro.serve.spec.ServeSpec`
contract from one serving session to a *fleet* of them: a mapping of
tenant name → (:class:`~repro.serve.spec.ServeSpec`,
:class:`FleetSLOSpec`) plus one :class:`FleetPoolSpec` describing the
shared shard-executor substrate every admitted tenant dispatches
through. The spec keeps the exact validation and serialization contract
of ``ServeSpec``:

- frozen and fully validated on construction;
- exhaustive errors — a spec with several bad fields across several
  tenants raises one :class:`~repro.exceptions.ConfigurationError`
  naming all of them (``tenants.<name>.serve.traffic.shots``-style
  qualified), so a fleet file is fixed in one edit pass;
- JSON round-trip stable: ``spec == FleetSpec.from_dict(spec.to_dict())``
  for every valid spec, with :meth:`FleetSpec.from_file` /
  :meth:`FleetSpec.to_file` as the file form.

Tenant names double as calibration-registry namespaces (the fleet
prefixes every tenant's registry device with ``<name>.``), so they must
be registry slugs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping

from repro.exceptions import ConfigurationError
from repro.serve.spec import (
    ServeSpec,
    _check_int,
    _check_number,
    _check_str,
    _Section,
)

__all__ = [
    "FleetSLOSpec",
    "FleetPoolSpec",
    "TenantSpec",
    "FleetSpec",
]


@dataclass(frozen=True)
class FleetSLOSpec(_Section):
    """One tenant's service-level objective and scheduling share.

    Parameters
    ----------
    p99_budget_multiplier:
        Per-shot p99 serving-latency budget, as a multiple of the
        tenant's FPGA decision budget (the
        :func:`~repro.fpga.latency.check_cycle_budget` baseline). A
        software runtime serves orders of magnitude above the hardware
        budget by construction, so the multiplier states how much of
        that slack the tenant tolerates before a run counts as an SLO
        violation.
    min_share:
        Guaranteed fraction of fleet shots: while the tenant's served
        share sits below it, the scheduler dispatches it ahead of any
        priority ordering (this is what bounds priorities — no weight
        can starve a tenant with a floor).
    max_share:
        Cap on the tenant's served fraction; above it the tenant only
        runs when no uncapped tenant has work (work-conserving).
    priority:
        Weight in the fair-share ordering between the min/max bounds;
        a priority-4 tenant is dispatched ~4x as often as a priority-1
        one under sustained contention.
    """

    p99_budget_multiplier: float = 1.0e5
    min_share: float = 0.0
    max_share: float = 1.0
    priority: int = 1

    def _problems(self) -> list[str]:
        problems: list[str] = []
        _check_number(
            problems,
            "p99_budget_multiplier",
            self.p99_budget_multiplier,
            positive=True,
        )
        _check_number(problems, "min_share", self.min_share)
        _check_number(problems, "max_share", self.max_share, positive=True)
        numbers = all(
            isinstance(v, (int, float)) and not isinstance(v, bool)
            for v in (self.min_share, self.max_share)
        )
        if numbers:
            if not 0.0 <= self.min_share <= 1.0:
                problems.append(
                    f"min_share must be within [0, 1], got {self.min_share}"
                )
            if self.max_share > 1.0:
                problems.append(
                    f"max_share must be <= 1, got {self.max_share}"
                )
            if 0.0 <= self.min_share <= 1.0 and self.max_share <= 1.0 and (
                self.min_share > self.max_share
            ):
                problems.append(
                    f"min_share must be <= max_share, got "
                    f"{self.min_share} > {self.max_share}"
                )
        _check_int(problems, "priority", self.priority, minimum=1)
        return problems


@dataclass(frozen=True)
class FleetPoolSpec(_Section):
    """The shared shard-executor substrate every tenant leases from.

    Parameters
    ----------
    executor:
        Shard backend (``serial``/``thread``/``process``) of the one
        :class:`~repro.pipeline.cluster.SharedShardPool`.
    workers:
        Pool workers; ``None`` uses the usable CPU count. A tenant
        demanding more workers than this is rejected at admission.
    oversubscription:
        Aggregate lease capacity as a multiple of ``workers``; admitted
        tenants beyond the physical worker count time-share the
        substrate under the fleet scheduler.
    registry_dir:
        Shared calibration-registry root for all tenants (namespaced
        per tenant); ``None`` gives the fleet a private temporary
        registry, discarded on close.
    max_tenants:
        Hard cap on admitted tenants; ``None`` is unlimited (capacity
        still gates admission).
    """

    executor: str = "thread"
    workers: int | None = None
    oversubscription: float = 2.0
    registry_dir: str | None = None
    max_tenants: int | None = None

    def _problems(self) -> list[str]:
        problems: list[str] = []
        _check_str(problems, "executor", self.executor)
        if isinstance(self.executor, str) and self.executor:
            from repro.pipeline.cluster import EXECUTOR_NAMES

            if self.executor not in EXECUTOR_NAMES:
                known = ", ".join(EXECUTOR_NAMES)
                problems.append(
                    f"executor must be one of: {known}; got {self.executor!r}"
                )
        _check_int(problems, "workers", self.workers, minimum=1, optional=True)
        _check_number(
            problems, "oversubscription", self.oversubscription, positive=True
        )
        if (
            isinstance(self.oversubscription, (int, float))
            and not isinstance(self.oversubscription, bool)
            and 0 < self.oversubscription < 1.0
        ):
            problems.append(
                "oversubscription must be >= 1.0, got "
                f"{self.oversubscription}"
            )
        _check_str(problems, "registry_dir", self.registry_dir, optional=True)
        _check_int(
            problems, "max_tenants", self.max_tenants, minimum=1, optional=True
        )
        return problems


@dataclass(frozen=True)
class TenantSpec(_Section):
    """One tenant of the fleet: its serving spec and its SLO.

    ``serve`` is a complete :class:`~repro.serve.spec.ServeSpec` (the
    tenant's chips, traffic, batching, drift response); ``slo`` is the
    fleet-level contract layered on top. The tenant's
    ``calibration.registry_dir`` is ignored at fleet warm-up — all
    tenants share the fleet registry root, namespaced by tenant name.
    """

    serve: ServeSpec = field(default_factory=ServeSpec)
    slo: FleetSLOSpec = field(default_factory=FleetSLOSpec)

    def _problems(self) -> list[str]:
        problems: list[str] = []
        if not isinstance(self.serve, ServeSpec):
            problems.append(
                f"serve must be a ServeSpec, got {type(self.serve).__name__}"
            )
        if not isinstance(self.slo, FleetSLOSpec):
            problems.append(
                f"slo must be a FleetSLOSpec, got {type(self.slo).__name__}"
            )
        return problems

    @classmethod
    def _from_section(
        cls, data: Mapping, section: str, problems: list[str]
    ) -> "TenantSpec | None":
        if not isinstance(data, Mapping):
            problems.append(
                f"{section} must be a mapping of fields, got {data!r}"
            )
            return None
        known = {"serve", "slo"}
        for key in sorted(set(data) - known):
            problems.append(f"{section}.{key}: unknown field")
        serve: ServeSpec | None = ServeSpec()
        if "serve" in data:
            try:
                serve = ServeSpec.from_dict(data["serve"])
            except ConfigurationError as exc:
                problems.extend(
                    f"{section}.serve.{p}"
                    for p in getattr(exc, "problems", (str(exc),))
                )
                serve = None
        slo: FleetSLOSpec | None = FleetSLOSpec()
        if "slo" in data:
            slo = FleetSLOSpec._from_section(
                data["slo"], f"{section}.slo", problems
            )
        if serve is None or slo is None:
            return None
        return cls(serve=serve, slo=slo)

    def to_dict(self) -> dict:
        return {"serve": self.serve.to_dict(), "slo": self.slo.to_dict()}


@dataclass(frozen=True)
class FleetSpec:
    """The single declarative source of truth for one serving fleet.

    ``tenants`` maps tenant name (a registry slug; also the tenant's
    calibration namespace) to :class:`TenantSpec`, in admission order.
    ``pool`` describes the shared substrate. Frozen, fully validated on
    construction, JSON round-trip stable — the fleet-scale sibling of
    :class:`~repro.serve.spec.ServeSpec`.
    """

    tenants: Mapping[str, TenantSpec] = field(default_factory=dict)
    pool: FleetPoolSpec = field(default_factory=FleetPoolSpec)

    def __post_init__(self) -> None:
        from repro.pipeline.registry import _SLUG

        problems: list[str] = []
        if not isinstance(self.pool, FleetPoolSpec):
            problems.append(
                f"pool must be a FleetPoolSpec, got "
                f"{type(self.pool).__name__}"
            )
        if not isinstance(self.tenants, Mapping):
            problems.append(
                f"tenants must be a mapping of name -> TenantSpec, got "
                f"{type(self.tenants).__name__}"
            )
        else:
            if not self.tenants:
                problems.append("tenants must name at least one tenant")
            min_shares = 0.0
            for name, tenant in self.tenants.items():
                if not isinstance(name, str) or not _SLUG.match(name):
                    problems.append(
                        f"tenant name {name!r} is not a registry slug "
                        "(letters, digits, '.', '_', '-'; not starting "
                        "with punctuation)"
                    )
                if not isinstance(tenant, TenantSpec):
                    problems.append(
                        f"tenants.{name} must be a TenantSpec, got "
                        f"{type(tenant).__name__}"
                    )
                else:
                    min_shares += tenant.slo.min_share
            if min_shares > 1.0 + 1e-9:
                problems.append(
                    "tenant min_share guarantees must sum to <= 1, got "
                    f"{min_shares:g}"
                )
            # Freeze insertion order into a plain dict so equality and
            # serialization are independent of the mapping type passed.
            object.__setattr__(self, "tenants", dict(self.tenants))
        if problems:
            exc = ConfigurationError(
                "invalid FleetSpec: " + "; ".join(problems)
            )
            exc.problems = tuple(problems)
            raise exc

    @property
    def tenant_names(self) -> tuple[str, ...]:
        """Tenant names in admission (declaration) order."""
        return tuple(self.tenants)

    # -- serialization -------------------------------------------------

    def to_dict(self) -> dict:
        """Nested plain-value form; ``json.dumps``-able as is."""
        return {
            "pool": self.pool.to_dict(),
            "tenants": {
                name: tenant.to_dict()
                for name, tenant in self.tenants.items()
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "FleetSpec":
        """Inverse of :meth:`to_dict`; exhaustive validation.

        Every unknown section, unknown field, and invalid value across
        the pool section and *all* tenants is collected and raised as
        one :class:`ConfigurationError`.
        """
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"FleetSpec data must be a mapping of sections, got {data!r}"
            )
        problems: list[str] = []
        for key in sorted(set(data) - {"pool", "tenants"}):
            problems.append(
                f"{key}: unknown section (expected one of: pool, tenants)"
            )
        pool = (
            FleetPoolSpec._from_section(data["pool"], "pool", problems)
            if "pool" in data
            else FleetPoolSpec()
        )
        tenants: dict[str, TenantSpec] = {}
        raw_tenants = data.get("tenants")
        if raw_tenants is None:
            problems.append("tenants: missing section")
        elif not isinstance(raw_tenants, Mapping):
            problems.append(
                f"tenants must be a mapping of name -> tenant, got "
                f"{raw_tenants!r}"
            )
        else:
            for name, raw in raw_tenants.items():
                tenant = TenantSpec._from_section(
                    raw, f"tenants.{name}", problems
                )
                if tenant is not None:
                    tenants[name] = tenant
        if problems:
            exc = ConfigurationError(
                "invalid FleetSpec: " + "; ".join(problems)
            )
            exc.problems = tuple(problems)
            raise exc
        return cls(tenants=tenants, pool=pool)

    @classmethod
    def from_file(cls, path: "str | Path") -> "FleetSpec":
        """Load a fleet spec from a JSON file (see :meth:`to_file`)."""
        path = Path(path)
        try:
            payload = json.loads(path.read_text())
        except OSError as exc:
            raise ConfigurationError(
                f"cannot read fleet spec file {path}: {exc}"
            ) from exc
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"fleet spec file {path} is not valid JSON: {exc}"
            ) from exc
        return cls.from_dict(payload)

    def to_file(self, path: "str | Path") -> Path:
        """Write the spec as indented JSON; returns the path."""
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path
