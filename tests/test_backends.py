"""Tests for repro.backends: the instrument-backend contract, the
versioned record/replay corpus format, socket framing, and the serving
integration (replay sessions, recording tees, executor parity)."""

from __future__ import annotations

import json
import shutil
import socket
import threading
from pathlib import Path

import numpy as np
import pytest

from repro.backends import (
    BACKEND_NAMES,
    CORPUS_FORMAT,
    CORPUS_FORMAT_VERSION,
    DummyBackend,
    RecordingBackend,
    ReplayBackend,
    SimulatorBackend,
    SocketBackend,
    chip_sha,
    create_backend,
    load_corpus,
    serve_corpus_over_socket,
)
from repro.backends.corpus import MANIFEST_NAME, CorpusWriter
from repro.config import Profile
from repro.data import generate_corpus
from repro.exceptions import ConfigurationError, DataError
from repro.physics.device import make_feedline_chip, multi_feedline_chips
from repro.pipeline import (
    EXECUTOR_NAMES,
    CorpusTraceSource,
    MultiFeedlineRunner,
    PipelineConfig,
)
from repro.pipeline.source import SimulatorTraceSource
from repro.serve import (
    BatchingSpec,
    CalibrationSpec,
    ClusterSpec,
    ReadoutService,
    ServeSpec,
    TrafficSpec,
    serve_once,
)


def tiny_profile(**overrides) -> Profile:
    """A fast sizing profile for backend tests (not a named profile)."""
    params = dict(
        name="tiny",
        shots_per_state=10,
        calibration_shots=100,
        nn_epochs=8,
        fnn_epochs=2,
        batch_size=64,
        qec_shots=10,
        qudit_shots=10,
        spectral_max_points=100,
        seed=701,
    )
    params.update(overrides)
    return Profile(**params)


@pytest.fixture(scope="module")
def chip():
    return make_feedline_chip(0, n_qubits=2, trace_len=120)


@pytest.fixture(scope="module")
def recorded(chip, tmp_path_factory):
    """A 60-shot corpus recorded through the recording tee.

    Returns ``(path, chunks)`` where ``chunks`` is the live stream the
    recording session itself consumed — the ground truth every replay
    path must reproduce bit-for-bit.
    """
    path = tmp_path_factory.mktemp("corpora") / "recorded"
    inner = SimulatorBackend(chip, chunk_size=20)
    with RecordingBackend(inner, path) as backend:
        chunks = list(backend.acquire(60, seed=31))
    return path, chunks


def assert_chunks_equal(observed, expected):
    observed = list(observed)
    assert len(observed) == len(expected)
    for got, want in zip(observed, expected):
        assert got.chunk_id == want.chunk_id
        np.testing.assert_array_equal(got.feedline, want.feedline)
        if want.prepared_levels is None:
            assert got.prepared_levels is None
        else:
            np.testing.assert_array_equal(
                got.prepared_levels, want.prepared_levels
            )


class TestBackendContract:
    def test_dummy_same_seed_bit_identical(self, chip):
        with DummyBackend(chip, chunk_size=16) as backend:
            first = list(backend.acquire(40, seed=5))
            second = list(backend.acquire(40, seed=5))
        assert_chunks_equal(second, first)
        assert [c.n_shots for c in first] == [16, 16, 8]

    def test_dummy_seeds_select_distinct_streams(self, chip):
        with DummyBackend(chip, chunk_size=40) as backend:
            a = next(iter(backend.acquire(40, seed=5)))
            b = next(iter(backend.acquire(40, seed=6)))
        assert not np.array_equal(a.feedline, b.feedline)

    def test_dummy_unlabeled_traffic(self, chip):
        backend = DummyBackend(chip, chunk_size=20, labeled=False)
        chunk = next(iter(backend.acquire(20, seed=1)))
        assert chunk.prepared_levels is None
        assert chunk.feedline.dtype == np.complex64
        assert chunk.feedline.shape == (20, chip.trace_len)

    @pytest.mark.parametrize(
        "kwargs",
        [{"chunk_size": 0}, {"amplitude": 0.0}, {"amplitude": -1.0}],
    )
    def test_dummy_rejects_bad_parameters(self, chip, kwargs):
        with pytest.raises(ConfigurationError):
            DummyBackend(chip, **kwargs)

    def test_describe_reports_geometry(self, chip):
        info = DummyBackend(chip).describe()
        assert info["backend"] == "dummy"
        assert info["n_qubits"] == chip.n_qubits
        assert info["n_levels"] == chip.n_levels
        assert info["trace_len"] == chip.trace_len
        assert json.dumps(info)  # capability dicts must stay JSON-able

    def test_resolve_shots_rejects_non_positive(self, chip):
        with pytest.raises(ConfigurationError, match="shots"):
            DummyBackend(chip).resolve_shots(0)

    def test_trace_source_adapts_one_acquisition(self, chip):
        backend = SimulatorBackend(chip, chunk_size=20)
        source = backend.trace_source(40, seed=9)
        assert source.n_shots == 40
        assert source.chip is chip
        direct = SimulatorTraceSource(
            chip, n_shots=40, chunk_size=20, seed=9
        )
        assert_chunks_equal(source.chunks(), list(direct.chunks()))

    def test_simulator_matches_legacy_source_bit_for_bit(self, chip):
        backend = SimulatorBackend(chip, chunk_size=24)
        legacy = SimulatorTraceSource(chip, n_shots=50, chunk_size=24, seed=7)
        assert_chunks_equal(
            backend.acquire(50, seed=7), list(legacy.chunks())
        )

    def test_simulator_session_clock_advances_per_chunk(self, chip):
        backend = SimulatorBackend(chip, chunk_size=20)
        assert backend.session_shots == 0
        list(backend.acquire(40, seed=1))
        assert backend.session_shots == 40
        list(backend.acquire(20, seed=1))
        assert backend.session_shots == 60


class TestCorpusRecordReplay:
    def test_recording_writes_versioned_manifest(self, recorded, chip):
        path, chunks = recorded
        manifest = json.loads((path / MANIFEST_NAME).read_text())
        assert manifest["format"] == CORPUS_FORMAT
        assert manifest["format_version"] == CORPUS_FORMAT_VERSION
        assert manifest["chip_sha"] == chip_sha(chip)
        assert manifest["seed"] == 31
        assert manifest["n_shots"] == 60
        assert manifest["labeled"] is True
        assert manifest["source"]["backend"] == "simulator"
        assert [entry["n_shots"] for entry in manifest["chunks"]] == [
            20,
            20,
            20,
        ]
        for entry in manifest["chunks"]:
            for part in ("feedline", "levels"):
                assert (path / entry[part]["file"]).is_file()
                assert len(entry[part]["sha256"]) == 64

    def test_loaded_corpus_replays_recorded_stream(self, recorded, chip):
        path, chunks = recorded
        corpus = load_corpus(path)
        assert corpus.n_shots == 60
        assert corpus.labeled is True
        assert corpus.seed == 31
        assert corpus.chip_sha == chip_sha(chip)
        assert_chunks_equal(corpus.chunks(), chunks)

    def test_replay_backend_is_bit_deterministic(self, recorded, chip):
        path, chunks = recorded
        with ReplayBackend(path, chip=chip) as backend:
            # acquire() args are ignored: the stream is the recording.
            assert backend.resolve_shots(7) == 60
            assert_chunks_equal(backend.acquire(7, seed=999), chunks)

    def test_replay_backend_adopts_recorded_chip(self, recorded, chip):
        path, _ = recorded
        with ReplayBackend(path) as backend:
            assert backend.chip is not None
            assert chip_sha(backend.chip) == chip_sha(chip)

    def test_replay_refuses_foreign_chip(self, recorded):
        path, _ = recorded
        other = make_feedline_chip(3, n_qubits=2, trace_len=120)
        with pytest.raises(ConfigurationError, match="chip"):
            ReplayBackend(path, chip=other).open()

    def test_recording_backend_requires_open(self, chip, tmp_path):
        backend = RecordingBackend(
            SimulatorBackend(chip, chunk_size=20), tmp_path / "c"
        )
        with pytest.raises(ConfigurationError, match="open"):
            list(backend.acquire(20))

    def test_writer_refuses_non_empty_directory(self, chip, tmp_path):
        target = tmp_path / "busy"
        target.mkdir()
        (target / "stale.npy").write_bytes(b"x")
        with pytest.raises(ConfigurationError, match="busy"):
            CorpusWriter(target, chip)

    def test_writer_enforces_uniform_labeling(self, chip, tmp_path):
        writer = CorpusWriter(tmp_path / "mixed", chip)
        labeled = next(
            iter(DummyBackend(chip, chunk_size=10).acquire(10, seed=1))
        )
        unlabeled = next(
            iter(
                DummyBackend(
                    chip, chunk_size=10, labeled=False
                ).acquire(10, seed=1)
            )
        )
        writer.append(labeled)
        with pytest.raises(ConfigurationError, match="uniform"):
            writer.append(unlabeled)


def copy_corpus(recorded, tmp_path) -> Path:
    src, _ = recorded
    dst = tmp_path / "tampered"
    shutil.copytree(src, dst)
    return dst


class TestCorpusIntegrity:
    def test_missing_manifest_names_the_file(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(ConfigurationError, match=MANIFEST_NAME):
            load_corpus(empty)

    def test_garbled_manifest_names_the_file(self, recorded, tmp_path):
        path = copy_corpus(recorded, tmp_path)
        (path / MANIFEST_NAME).write_text("{not json", encoding="utf-8")
        with pytest.raises(ConfigurationError, match=MANIFEST_NAME):
            load_corpus(path)

    def test_truncated_manifest_names_the_file(self, recorded, tmp_path):
        path = copy_corpus(recorded, tmp_path)
        manifest_file = path / MANIFEST_NAME
        manifest_file.write_text(manifest_file.read_text()[:40])
        with pytest.raises(ConfigurationError, match=MANIFEST_NAME):
            load_corpus(path)

    def test_wrong_format_version_rejected(self, recorded, tmp_path):
        path = copy_corpus(recorded, tmp_path)
        manifest = json.loads((path / MANIFEST_NAME).read_text())
        manifest["format_version"] = CORPUS_FORMAT_VERSION + 1
        (path / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(ConfigurationError, match="format_version"):
            load_corpus(path)

    def test_chunk_checksum_mismatch_names_the_chunk(
        self, recorded, tmp_path
    ):
        path = copy_corpus(recorded, tmp_path)
        victim = "chunk-00001.feedline.npy"
        garbage = np.load(path / victim)
        np.save(path / victim, garbage + np.complex64(1 + 1j))
        with pytest.raises(ConfigurationError) as excinfo:
            load_corpus(path)
        assert victim in str(excinfo.value)
        assert "checksum" in str(excinfo.value)

    def test_missing_chunk_file_names_the_file(self, recorded, tmp_path):
        path = copy_corpus(recorded, tmp_path)
        victim = "chunk-00002.levels.npy"
        (path / victim).unlink()
        with pytest.raises(ConfigurationError, match=victim):
            load_corpus(path)

    def test_chip_sha_mismatch_names_the_manifest(self, recorded, tmp_path):
        path = copy_corpus(recorded, tmp_path)
        manifest = json.loads((path / MANIFEST_NAME).read_text())
        manifest["chip_sha"] = "0" * 40
        (path / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(ConfigurationError) as excinfo:
            load_corpus(path)
        assert MANIFEST_NAME in str(excinfo.value)
        assert "chip" in str(excinfo.value)

    def test_verify_false_skips_hashing_not_structure(
        self, recorded, tmp_path
    ):
        path = copy_corpus(recorded, tmp_path)
        victim = "chunk-00000.feedline.npy"
        tampered = np.load(path / victim)
        np.save(path / victim, tampered * np.complex64(2.0))
        corpus = load_corpus(path, verify=False)
        assert corpus.n_shots == 60


class TestReadOnlyViews:
    """Satellite: every replayed chunk is a read-only view."""

    def test_recorded_corpus_chunks_are_read_only(self, recorded):
        path, _ = recorded
        for chunk in load_corpus(path).chunks():
            assert not chunk.feedline.flags.writeable
            with pytest.raises(ValueError):
                chunk.feedline[0, 0] = 0
            with pytest.raises(ValueError):
                chunk.prepared_levels[0, 0] = 0

    def test_corpus_trace_source_unshuffled_views_are_read_only(self, chip):
        corpus = generate_corpus(chip, shots_per_state=4, seed=11)
        source = CorpusTraceSource(corpus, chunk_size=8, shuffle=False)
        for chunk in source.chunks():
            assert not chunk.feedline.flags.writeable
            with pytest.raises(ValueError):
                chunk.feedline[0, 0] = 0
            with pytest.raises(ValueError):
                chunk.prepared_levels[0, 0] = 0
        # The corpus itself must stay untouched and writable for owners.
        assert corpus.feedline.flags.writeable

    def test_shuffled_replay_still_yields_copies(self, chip):
        corpus = generate_corpus(chip, shots_per_state=4, seed=11)
        source = CorpusTraceSource(corpus, chunk_size=8, shuffle=True, seed=3)
        chunk = next(iter(source.chunks()))
        chunk.feedline[0, 0] = 123  # fancy-indexed copy: writes are safe
        assert not np.any(corpus.feedline == 123)


class TestSocketBackend:
    def test_socketpair_round_trip(self, recorded, chip):
        path, chunks = recorded
        server, client = socket.socketpair()
        try:
            sent = {}
            feeder = threading.Thread(
                target=lambda: sent.setdefault(
                    "n", serve_corpus_over_socket(path, server)
                )
            )
            feeder.start()
            with SocketBackend(sock=client, chip=chip) as backend:
                assert backend.resolve_shots(1) == 60
                assert_chunks_equal(backend.acquire(1), chunks)
            feeder.join(timeout=10)
            assert sent["n"] == len(chunks)
        finally:
            server.close()
            client.close()

    def test_socket_chunks_are_read_only(self, recorded):
        path, _ = recorded
        server, client = socket.socketpair()
        try:
            feeder = threading.Thread(
                target=serve_corpus_over_socket, args=(path, server)
            )
            feeder.start()
            with SocketBackend(sock=client) as backend:
                chunk = next(iter(backend.acquire(1)))
                assert not chunk.feedline.flags.writeable
            feeder.join(timeout=10)
        finally:
            server.close()
            client.close()

    def test_socket_stream_is_single_use(self, recorded):
        path, _ = recorded
        server, client = socket.socketpair()
        try:
            feeder = threading.Thread(
                target=serve_corpus_over_socket, args=(path, server)
            )
            feeder.start()
            with SocketBackend(sock=client) as backend:
                list(backend.acquire(1))
                with pytest.raises(DataError, match="consumed"):
                    list(backend.acquire(1))
            feeder.join(timeout=10)
        finally:
            server.close()
            client.close()

    def test_socket_refuses_foreign_chip(self, recorded):
        path, _ = recorded
        other = make_feedline_chip(3, n_qubits=2, trace_len=120)
        server, client = socket.socketpair()
        try:
            feeder = threading.Thread(
                target=serve_corpus_over_socket, args=(path, server)
            )
            feeder.start()
            with pytest.raises(ConfigurationError, match="chip"):
                SocketBackend(sock=client, chip=other).open()
            feeder.join(timeout=10)
        finally:
            server.close()
            client.close()

    def test_requires_exactly_one_endpoint(self):
        with pytest.raises(ConfigurationError):
            SocketBackend()
        with pytest.raises(ConfigurationError):
            SocketBackend("/tmp/x", sock=socket.socket(socket.AF_UNIX))

    def test_unix_path_connect_failure_is_configuration_error(
        self, tmp_path
    ):
        with pytest.raises(ConfigurationError, match="connect"):
            SocketBackend(tmp_path / "nobody-listens.sock").open()


class TestBackendRegistry:
    @pytest.mark.parametrize(
        "name,kwargs,match",
        [
            ("warp", {}, "backend must be one of"),
            ("replay", {}, "corpus_path"),
            ("simulator", {"corpus_path": "x"}, "corpus_path"),
            ("socket", {}, "socket_path"),
            ("dummy", {"socket_path": "x"}, "socket_path"),
            (
                "replay",
                {"corpus_path": "x", "record_path": "y"},
                "record_path",
            ),
        ],
    )
    def test_cross_field_validation(self, chip, name, kwargs, match):
        with pytest.raises(ConfigurationError, match=match):
            create_backend(name, chip, **kwargs)

    def test_drift_requires_the_simulator(self, chip):
        from repro.serve import DriftSpec

        drift = DriftSpec(t1_decay_per_kshot=0.1).model()
        with pytest.raises(ConfigurationError, match="drift"):
            create_backend("dummy", chip, drift=drift)

    def test_every_registered_name_constructs(self, chip, recorded, tmp_path):
        path, _ = recorded
        built = {
            "simulator": create_backend("simulator", chip),
            "dummy": create_backend("dummy", chip),
            "replay": create_backend("replay", chip, corpus_path=str(path)),
            "socket": create_backend(
                "socket", chip, socket_path=str(tmp_path / "s.sock")
            ),
        }
        assert set(built) == set(BACKEND_NAMES)
        for name, backend in built.items():
            assert backend.name == name

    def test_record_path_wraps_any_generator(self, chip, tmp_path):
        backend = create_backend(
            "dummy", chip, record_path=str(tmp_path / "rec")
        )
        assert isinstance(backend, RecordingBackend)
        assert isinstance(backend.inner, DummyBackend)


class TestExecutorReplayParity:
    """Satellite: recorded counts survive every executor unchanged."""

    @pytest.fixture(scope="class")
    def feedline_chips(self):
        return multi_feedline_chips(2, n_qubits=2, trace_len=120)

    @pytest.fixture(scope="class")
    def broadcast_corpus(self, feedline_chips, tmp_path_factory):
        # Recorded on the feedline-0 chip; geometry-compatible with
        # every feedline, so run_replay broadcasts it across the fleet.
        path = tmp_path_factory.mktemp("parity") / "corpus"
        inner = SimulatorBackend(feedline_chips[0], chunk_size=20)
        with RecordingBackend(inner, path) as backend:
            list(backend.acquire(60, seed=47))
        return load_corpus(path)

    @pytest.fixture(scope="class")
    def warm_registry(self, feedline_chips, tmp_path_factory):
        registry_dir = tmp_path_factory.mktemp("parity-registry")
        with MultiFeedlineRunner(
            feedline_chips,
            tiny_profile(),
            executor="serial",
            registry_dir=registry_dir,
        ) as runner:
            runner.prefit()
        return registry_dir

    def test_replayed_counts_identical_across_executors(
        self, feedline_chips, broadcast_corpus, warm_registry
    ):
        reference = None
        for executor in EXECUTOR_NAMES:
            with MultiFeedlineRunner(
                feedline_chips,
                tiny_profile(),
                executor=executor,
                workers=2,
                config=PipelineConfig(batch_size=32),
                registry_dir=warm_registry,
            ) as runner:
                report = runner.run_replay(broadcast_corpus)
            assert report.n_shots == 2 * broadcast_corpus.n_shots
            counts = {
                name: fl.assignment_counts
                for name, fl in report.feedline_reports.items()
            }
            if reference is None:
                reference = counts
            else:
                assert counts == reference, executor


class TestServiceIntegration:
    """Record and replay through the full serving stack."""

    @pytest.fixture(scope="class")
    def service_recording(self, tmp_path_factory):
        """serve_once with a recording tee: (corpus_path, report)."""
        root = tmp_path_factory.mktemp("service-recording")
        corpus_path = root / "corpus"
        spec = ServeSpec(
            traffic=TrafficSpec(
                shots=40, chunk_size=20, record_path=str(corpus_path)
            ),
            cluster=ClusterSpec(qubits_per_feedline=2),
            batching=BatchingSpec(batch_size=20),
            calibration=CalibrationSpec(
                registry_dir=str(root / "registry")
            ),
        )
        report = serve_once(spec, profile=tiny_profile())
        return corpus_path, report, root / "registry"

    def test_recording_session_persists_a_loadable_corpus(
        self, service_recording
    ):
        corpus_path, report, _ = service_recording
        corpus = load_corpus(corpus_path)
        assert corpus.n_shots == report.n_shots == 40
        assert corpus.labeled

    def test_replay_session_reproduces_recorded_counts(
        self, service_recording
    ):
        corpus_path, recorded_report, registry = service_recording
        spec = ServeSpec(
            traffic=TrafficSpec(
                shots=40,
                chunk_size=20,
                backend="replay",
                corpus_path=str(corpus_path),
            ),
            cluster=ClusterSpec(qubits_per_feedline=2),
            batching=BatchingSpec(batch_size=20),
            calibration=CalibrationSpec(registry_dir=str(registry)),
        )
        replayed = serve_once(spec, profile=tiny_profile())
        assert replayed.assignment_counts == recorded_report.assignment_counts
        assert replayed.accuracy == recorded_report.accuracy

    def test_replay_session_never_refits(self, service_recording):
        corpus_path, _, registry = service_recording
        spec = ServeSpec(
            traffic=TrafficSpec(
                shots=40,
                chunk_size=20,
                backend="replay",
                corpus_path=str(corpus_path),
            ),
            cluster=ClusterSpec(qubits_per_feedline=2),
            batching=BatchingSpec(batch_size=20),
            calibration=CalibrationSpec(registry_dir=str(registry)),
        )
        with ReadoutService(spec, profile=tiny_profile()) as service:
            first = service.run()
            second = service.run()
            assert service.stats.cold_fits == 0
            assert service.backend is not None
            assert service.backend.name == "replay"
        assert first.assignment_counts == second.assignment_counts
        assert second.calibration_cached is True

    def test_socket_session_matches_recorded_counts(
        self, service_recording, tmp_path
    ):
        corpus_path, recorded_report, registry = service_recording
        sock_path = tmp_path / "traces.sock"
        feeder = threading.Thread(
            target=serve_corpus_over_socket,
            args=(corpus_path, sock_path),
        )
        feeder.start()
        try:
            deadline = 50
            while not sock_path.exists() and deadline:
                threading.Event().wait(0.1)
                deadline -= 1
            spec = ServeSpec(
                traffic=TrafficSpec(
                    shots=40,
                    chunk_size=20,
                    backend="socket",
                    socket_path=str(sock_path),
                ),
                cluster=ClusterSpec(qubits_per_feedline=2),
                batching=BatchingSpec(batch_size=20),
                calibration=CalibrationSpec(registry_dir=str(registry)),
            )
            report = serve_once(spec, profile=tiny_profile())
        finally:
            feeder.join(timeout=10)
        assert report.n_shots == 40
        assert (
            report.assignment_counts == recorded_report.assignment_counts
        )

    def test_dummy_backend_serves_chance_level_traffic(self, tmp_path):
        spec = ServeSpec(
            traffic=TrafficSpec(shots=40, chunk_size=20, backend="dummy"),
            cluster=ClusterSpec(qubits_per_feedline=2),
            batching=BatchingSpec(batch_size=20),
            calibration=CalibrationSpec(
                registry_dir=str(tmp_path / "registry")
            ),
        )
        report = serve_once(spec, profile=tiny_profile())
        assert report.n_shots == 40
        assert report.accuracy is not None
