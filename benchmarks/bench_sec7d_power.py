"""Sec VII.D bench: power/latency of the deployed design.

Paper: 1.561 mW at 1 GHz, 5-cycle latency, 6,505 parameters.
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.sec7d import run_sec7d_power


def test_sec7d_power_and_latency(benchmark, profile):
    result = run_once(benchmark, run_sec7d_power, profile)
    print("\n" + result.format_table())
    assert result.power_mw == pytest.approx(1.561, abs=1e-3)
    assert result.latency_cycles == 5
    assert result.total_parameters == 6505
