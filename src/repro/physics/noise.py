"""Additive noise models for the amplification chain."""

from __future__ import annotations

import numpy as np

from repro._util import check_random_state
from repro.exceptions import ConfigurationError

__all__ = ["complex_white_noise", "apply_gain_drift"]


def complex_white_noise(
    shape: tuple[int, ...],
    std: float,
    rng: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Circularly symmetric complex Gaussian noise with total std ``std``.

    Each quadrature gets ``std / sqrt(2)`` so that
    ``E[|n|^2] = std**2`` — the convention used for the chip's
    ``noise_std`` parameter.
    """
    if std < 0:
        raise ConfigurationError(f"std must be >= 0, got {std}")
    rng = check_random_state(rng)
    if std == 0:
        return np.zeros(shape, dtype=np.complex128)
    scale = std / np.sqrt(2.0)
    return rng.normal(0.0, scale, shape) + 1j * rng.normal(0.0, scale, shape)


def apply_gain_drift(
    signal: np.ndarray,
    drift_std: float,
    rng: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Apply a per-shot multiplicative gain fluctuation.

    Models slow amplifier gain drift between shots: each trace is scaled by
    ``1 + g`` with ``g ~ N(0, drift_std)``. Disabled (identity) when
    ``drift_std`` is 0.
    """
    if drift_std < 0:
        raise ConfigurationError(f"drift_std must be >= 0, got {drift_std}")
    if drift_std == 0:
        return signal
    rng = check_random_state(rng)
    gains = 1.0 + rng.normal(0.0, drift_std, signal.shape[0])
    return signal * gains[:, None]
