"""Shared corpus construction and discriminator training for experiments.

All readout tables/figures use the same corpus pipeline: the default
five-qubit chip, all 243 joint basis states at ``profile.shots_per_state``
shots, and the paper's 30-70 train/test split per state. Corpora and
trained discriminators are cached per (profile name, seed) so a bench
suite touching several tables trains each model once; per-key locks keep
that fit-once guarantee when ``repro.api.run_suite`` executes experiments
on a thread pool.

Discriminators are built by design name through
``repro.discriminators.registry`` — the single source of truth for the
name → class mapping shared with the pipeline runner and artifact loader.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.lockgraph import trace_lock
from repro.config import Profile
from repro.data import generate_corpus
from repro.data.dataset import ReadoutCorpus
from repro.discriminators import registry as discriminators
from repro.discriminators.registry import NN_LEARNING_RATE
from repro.ml import stratified_split
from repro.ml.metrics import geometric_mean_fidelity, per_qubit_fidelity
from repro.physics.device import default_five_qubit_chip

__all__ = [
    "ReadoutBundle",
    "TrainedDesign",
    "get_readout_bundle",
    "get_trained",
    "clear_caches",
    "NN_LEARNING_RATE",
]

TRAIN_FRACTION = 0.30


@dataclass(frozen=True)
class ReadoutBundle:
    """A corpus with its train/test split."""

    corpus: ReadoutCorpus
    train_idx: np.ndarray
    test_idx: np.ndarray

    @property
    def test_labels(self) -> np.ndarray:
        return self.corpus.labels[self.test_idx]


@dataclass(frozen=True)
class TrainedDesign:
    """A fitted discriminator with its test-set fidelity numbers."""

    name: str
    discriminator: object
    fidelities: np.ndarray
    f5q: float
    n_parameters: int


_BUNDLE_CACHE: dict[tuple[str, int], ReadoutBundle] = {}
_TRAINED_CACHE: dict[tuple[str, int, str], TrainedDesign] = {}

# One lock per cache key so concurrent suite workers never fit the same
# (profile, design) twice, while distinct keys still fill in parallel.
_KEY_LOCKS: dict[tuple, object] = {}
_KEY_LOCKS_GUARD = trace_lock("experiments.key-locks-guard")


def _key_lock(key: tuple):
    with _KEY_LOCKS_GUARD:
        return _KEY_LOCKS.setdefault(
            key, trace_lock(f"experiments.key-lock:{'/'.join(map(str, key))}")
        )


def clear_caches() -> None:
    """Drop all cached corpora and trained models (frees memory)."""
    _BUNDLE_CACHE.clear()
    _TRAINED_CACHE.clear()
    with _KEY_LOCKS_GUARD:
        _KEY_LOCKS.clear()


def get_readout_bundle(profile: Profile) -> ReadoutBundle:
    """Corpus + 30-70 per-state split for a profile (cached)."""
    key = (profile.name, profile.seed)
    with _key_lock(("bundle", *key)):
        if key not in _BUNDLE_CACHE:
            chip = default_five_qubit_chip()
            corpus = generate_corpus(
                chip, shots_per_state=profile.shots_per_state, seed=profile.seed
            )
            train_idx, test_idx = stratified_split(
                corpus.labels, TRAIN_FRACTION, seed=profile.seed + 1
            )
            _BUNDLE_CACHE[key] = ReadoutBundle(corpus, train_idx, test_idx)
    return _BUNDLE_CACHE[key]


def get_trained(profile: Profile, design: str) -> TrainedDesign:
    """Fit a named design on the profile's corpus (cached) and score it.

    ``design`` is any name registered in
    ``repro.discriminators.registry`` (``"ours"``, ``"herqules"``,
    ``"fnn"``, ...).
    """
    key = (profile.name, profile.seed, design)
    with _key_lock(("trained", *key)):
        if key not in _TRAINED_CACHE:
            bundle = get_readout_bundle(profile)
            disc = discriminators.build(design, profile)
            disc.fit(bundle.corpus, bundle.train_idx)
            pred = disc.predict(bundle.corpus, bundle.test_idx)
            fid = per_qubit_fidelity(
                bundle.test_labels,
                pred,
                bundle.corpus.n_qubits,
                bundle.corpus.n_levels,
            )
            _TRAINED_CACHE[key] = TrainedDesign(
                name=design,
                discriminator=disc,
                fidelities=fid,
                f5q=geometric_mean_fidelity(fid),
                n_parameters=disc.n_parameters,
            )
    return _TRAINED_CACHE[key]


#: Published architectures (layer widths) used by the resource/power
#: experiments; OURS is instantiated once per qubit.
FNN_ARCHITECTURE = (1000, 500, 250, 243)
HERQULES_ARCHITECTURE = (30, 60, 120, 243)
OURS_ARCHITECTURE = (45, 22, 11, 3)
OURS_REPLICAS = 5
