"""Command-line entry point: run any paper experiment from the shell.

Examples::

    repro list
    repro table4 --profile quick
    repro fig5b --profile full --seed 7
    repro all --profile quick
    repro pipeline --shots 2000 --workers 4 --profile quick
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.config import get_profile
from repro.experiments import EXPERIMENTS

__all__ = ["main", "build_parser", "build_pipeline_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Efficient and Scalable Architectures for "
            "Multi-level Superconducting Qubit Readout' (DAC 2025)"
        ),
    )
    parser.add_argument(
        "experiment",
        help=(
            "experiment id (table1/table2/.../headline), 'all', 'list', "
            "or 'pipeline' (streaming readout runtime; see "
            "'repro pipeline --help')"
        ),
    )
    parser.add_argument(
        "--profile",
        default="quick",
        help="sizing profile: quick, full, or paper (default: quick)",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="override the profile's base seed"
    )
    return parser


def build_pipeline_parser() -> argparse.ArgumentParser:
    """Parser for the ``repro pipeline`` subcommand (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro pipeline",
        description=(
            "Stream simulated readout traffic through the batched "
            "demod -> matched-filter -> discriminator -> ERASER runtime, "
            "reporting shots/sec and per-stage p50/p99 latency"
        ),
    )
    parser.add_argument(
        "--shots", type=int, default=2000, help="shots to stream (default: 2000)"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="channel-shard workers for demod/matched-filter (default: 1)",
    )
    parser.add_argument(
        "--batch-size", type=int, default=64, help="shots per micro-batch"
    )
    parser.add_argument(
        "--chunk-size", type=int, default=256, help="shots per source chunk"
    )
    parser.add_argument(
        "--profile",
        default="quick",
        help="calibration sizing profile: quick, full, or paper",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="override the profile's base seed"
    )
    parser.add_argument(
        "--registry",
        default=".repro-cache/calibration",
        help=(
            "calibration-registry directory; fitted artifacts are stored "
            "here so warm runs skip retraining (default: "
            ".repro-cache/calibration)"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the calibration registry (always fit from scratch)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the run report as JSON to PATH",
    )
    return parser


def _run_pipeline(argv: list[str]) -> int:
    from repro.pipeline import run_streaming_pipeline

    args = build_pipeline_parser().parse_args(argv)
    profile = get_profile(args.profile)
    if args.seed is not None:
        profile = profile.with_seed(args.seed)

    start = time.perf_counter()
    report = run_streaming_pipeline(
        profile,
        n_shots=args.shots,
        workers=args.workers,
        batch_size=args.batch_size,
        chunk_size=args.chunk_size,
        registry_dir=None if args.no_cache else args.registry,
    )
    elapsed = time.perf_counter() - start
    print(report.format_table())
    print(f"[pipeline completed in {elapsed:.1f} s]\n")
    if args.json is not None:
        with open(args.json, "w") as fh:
            json.dump(report.to_dict(), fh, indent=2)
        print(f"report written to {args.json}")
    return 0


def _run_one(name: str, profile) -> None:
    start = time.perf_counter()
    result = EXPERIMENTS[name](profile)
    elapsed = time.perf_counter() - start
    print(result.format_table())
    print(f"[{name} completed in {elapsed:.1f} s]\n")


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "pipeline":
        # Fast path keeps 'repro pipeline --help' on the pipeline parser.
        return _run_pipeline(argv[1:])
    # Peek at the experiment positional: 'pipeline' routes to its own
    # parser with the shared flags (--profile, --seed) forwarded, so
    # 'repro --profile full pipeline' also works while flag *values*
    # equal to 'pipeline' stay untouched.
    peek, extra = build_parser().parse_known_args(argv)
    if peek.experiment == "pipeline":
        forwarded = list(extra) + ["--profile", peek.profile]
        if peek.seed is not None:
            forwarded += ["--seed", str(peek.seed)]
        return _run_pipeline(forwarded)

    args = build_parser().parse_args(argv)

    if args.experiment == "list":
        print("available experiments:")
        for name in EXPERIMENTS:
            print(f"  {name}")
        print("  pipeline  (streaming runtime; see 'repro pipeline --help')")
        return 0

    profile = get_profile(args.profile)
    if args.seed is not None:
        profile = profile.with_seed(args.seed)

    if args.experiment == "all":
        for name in EXPERIMENTS:
            _run_one(name, profile)
        return 0

    if args.experiment not in EXPERIMENTS:
        known = ", ".join(EXPERIMENTS)
        print(
            f"unknown experiment {args.experiment!r}; expected one of: {known}",
            file=sys.stderr,
        )
        return 2

    _run_one(args.experiment, profile)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
