"""Tests for multi-feedline sharding, executors, and adaptive batching."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.config import Profile
from repro.discriminators import MLRDiscriminator
from repro.exceptions import ConfigurationError
from repro.physics.device import (
    default_five_qubit_chip,
    make_feedline_chip,
    multi_feedline_chips,
)
from repro.pipeline import (
    EXECUTOR_NAMES,
    AdaptiveBatcher,
    CalibrationKey,
    CalibrationRegistry,
    ClusterReport,
    FeedlineSpec,
    MultiFeedlineRunner,
    PipelineConfig,
    ProcessShardExecutor,
    SerialShardExecutor,
    ShotChunk,
    ThreadShardExecutor,
    get_shard_executor,
    run_multi_feedline_pipeline,
)


def tiny_profile(**overrides) -> Profile:
    """A fast sizing profile for cluster tests (not a named CLI profile)."""
    params = dict(
        name="tiny",
        shots_per_state=10,
        calibration_shots=100,
        nn_epochs=8,
        fnn_epochs=2,
        batch_size=64,
        qec_shots=10,
        qudit_shots=10,
        spectral_max_points=100,
        seed=601,
    )
    params.update(overrides)
    return Profile(**params)


@pytest.fixture(scope="module")
def feedline_chips():
    """Two light two-qubit feedlines (short traces keep fits fast)."""
    return multi_feedline_chips(2, n_qubits=2, trace_len=120)


@pytest.fixture(scope="module")
def warm_registry(tmp_path_factory, feedline_chips):
    """A registry pre-fitted for both feedlines (serial cold run)."""
    registry_dir = tmp_path_factory.mktemp("cluster-registry")
    run_multi_feedline_pipeline(
        tiny_profile(),
        20,
        feedline_chips,
        executor="serial",
        config=PipelineConfig(batch_size=20),
        registry_dir=registry_dir,
    )
    return registry_dir


class TestFeedlineChipFactory:
    def test_feedline_zero_is_the_default_chip(self):
        chip = make_feedline_chip(0, n_qubits=5)
        assert chip.to_dict() == default_five_qubit_chip().to_dict()

    def test_feedlines_are_distinct_devices(self):
        a, b = multi_feedline_chips(2, n_qubits=3)
        assert a.n_qubits == b.n_qubits == 3
        assert [q.name for q in b.qubits] == ["F1Q1", "F1Q2", "F1Q3"]
        assert b.qubits[0].chi != a.qubits[0].chi
        assert b.to_dict() != a.to_dict()

    def test_qubit_slice_keeps_crosstalk_block(self):
        full = default_five_qubit_chip()
        sliced = make_feedline_chip(0, n_qubits=2)
        assert np.array_equal(
            sliced.crosstalk, np.asarray(full.crosstalk)[:2, :2]
        )

    def test_rejects_bad_arguments(self):
        with pytest.raises(ConfigurationError):
            make_feedline_chip(-1)
        with pytest.raises(ConfigurationError):
            make_feedline_chip(0, n_qubits=0)
        with pytest.raises(ConfigurationError):
            make_feedline_chip(0, n_qubits=6)
        with pytest.raises(ConfigurationError):
            multi_feedline_chips(0)


def _double(x: int) -> int:
    """Module-level so the process executor can pickle it."""
    return 2 * x


class TestShardExecutors:
    def test_names_cover_all_backends(self):
        assert EXECUTOR_NAMES == ("serial", "thread", "process")

    @pytest.mark.parametrize("name", EXECUTOR_NAMES)
    def test_map_preserves_task_order(self, name):
        executor = get_shard_executor(name, workers=2)
        try:
            assert executor.map(_double, [3, 1, 2]) == [6, 2, 4]
        finally:
            executor.close()

    def test_unknown_executor_raises(self):
        with pytest.raises(ConfigurationError, match="unknown shard executor"):
            get_shard_executor("gpu")

    def test_pool_executors_reject_bad_workers(self):
        with pytest.raises(ConfigurationError):
            ThreadShardExecutor(0)
        with pytest.raises(ConfigurationError):
            ProcessShardExecutor(0)

    def test_serial_close_is_idempotent(self):
        executor = SerialShardExecutor()
        executor.close()
        executor.close()


class TestClusterValidation:
    def test_requires_feedlines(self):
        with pytest.raises(ConfigurationError, match="at least one feedline"):
            MultiFeedlineRunner([], tiny_profile())

    def test_rejects_duplicate_names(self, feedline_chips):
        specs = [FeedlineSpec("f", chip) for chip in feedline_chips]
        with pytest.raises(ConfigurationError, match="unique"):
            MultiFeedlineRunner(specs, tiny_profile())

    def test_rejects_unknown_executor(self, feedline_chips):
        with pytest.raises(ConfigurationError, match="unknown shard executor"):
            MultiFeedlineRunner(
                feedline_chips, tiny_profile(), executor="gpu"
            )

    def test_rejects_bad_shot_count(self, feedline_chips):
        runner = MultiFeedlineRunner(feedline_chips, tiny_profile())
        with pytest.raises(ConfigurationError):
            runner.run(0)

    def test_spec_device_defaults_to_name(self, feedline_chips):
        spec = FeedlineSpec("fl-a", feedline_chips[0])
        assert spec.registry_device == "fl-a"
        named = FeedlineSpec("fl-a", feedline_chips[0], device="shared")
        assert named.registry_device == "shared"


class TestClusterDeterminism:
    """The same seeded traffic must discriminate identically everywhere."""

    def _run(self, chips, registry_dir, executor, workers=None):
        return run_multi_feedline_pipeline(
            tiny_profile(),
            30,
            chips,
            executor=executor,
            workers=workers,
            config=PipelineConfig(batch_size=16),
            chunk_size=10,
            registry_dir=registry_dir,
        )

    @pytest.fixture(scope="class")
    def per_executor(self, feedline_chips, warm_registry):
        return {
            executor: self._run(feedline_chips, warm_registry, executor)
            for executor in EXECUTOR_NAMES
        }

    def test_identical_assignment_counts_across_executors(self, per_executor):
        serial = per_executor["serial"]
        for executor in ("thread", "process"):
            other = per_executor[executor]
            for name, report in serial.feedline_reports.items():
                assert (
                    other.feedline_reports[name].assignment_counts
                    == report.assignment_counts
                ), f"{executor} diverged on {name}"

    def test_identical_accuracy_across_executors(self, per_executor):
        accuracies = {
            executor: report.accuracy
            for executor, report in per_executor.items()
        }
        assert len(set(accuracies.values())) == 1, accuracies

    def test_all_executors_served_from_warm_registry(self, per_executor):
        for report in per_executor.values():
            for feedline in report.feedline_reports.values():
                assert feedline.calibration_cached is True

    def test_partitioning_does_not_change_results(
        self, feedline_chips, warm_registry, per_executor
    ):
        # One shard worker vs one worker per feedline: same traffic,
        # same labels, only the schedule differs.
        narrow = self._run(
            feedline_chips, warm_registry, "thread", workers=1
        )
        wide = per_executor["thread"]
        for name, report in narrow.feedline_reports.items():
            assert (
                wide.feedline_reports[name].assignment_counts
                == report.assignment_counts
            )

    def test_single_feedline_partition_matches_cluster_member(
        self, feedline_chips, warm_registry, per_executor
    ):
        # Feedline 0 streamed alone must behave exactly as it does
        # inside the two-feedline partition (seed = base + index).
        alone = self._run(feedline_chips[:1], warm_registry, "serial")
        member = per_executor["serial"].feedline_reports["feedline-0"]
        solo = alone.feedline_reports["feedline-0"]
        assert solo.assignment_counts == member.assignment_counts
        assert solo.accuracy == member.accuracy


class TestHeterogeneousPlacement:
    """Greedy longest-first dispatch for unequal feedlines."""

    @staticmethod
    def _runner(specs, **kwargs):
        return MultiFeedlineRunner(
            specs, tiny_profile(), executor="serial", **kwargs
        )

    def test_heaviest_feedline_dispatches_first(self):
        from repro.pipeline.cluster import _placement_order

        light = make_feedline_chip(0, n_qubits=1, trace_len=80)
        heavy = make_feedline_chip(1, n_qubits=2, trace_len=200)
        runner = self._runner(
            [FeedlineSpec("light", light), FeedlineSpec("heavy", heavy)]
        )
        tasks = runner._tasks(10, None)
        assert [t.name for t in _placement_order(tasks)] == ["heavy", "light"]

    def test_weight_is_qubits_times_trace_length(self):
        from repro.pipeline.cluster import _placement_order

        # 2 qubits x 100 samples outweighs 1 qubit x 150 samples.
        wide = make_feedline_chip(0, n_qubits=2, trace_len=100)
        long = make_feedline_chip(1, n_qubits=1, trace_len=150)
        runner = self._runner(
            [FeedlineSpec("long", long), FeedlineSpec("wide", wide)]
        )
        tasks = runner._tasks(10, None)
        assert [t.name for t in _placement_order(tasks)] == ["wide", "long"]

    def test_equal_weights_keep_declared_order(self, feedline_chips):
        from repro.pipeline.cluster import _placement_order

        runner = self._runner(list(feedline_chips))
        tasks = runner._tasks(10, None)
        assert [t.name for t in _placement_order(tasks)] == [
            t.name for t in tasks
        ]

    def test_seeds_stay_pinned_to_declared_index(self):
        from repro.pipeline.cluster import _placement_order

        light = make_feedline_chip(0, n_qubits=1, trace_len=80)
        heavy = make_feedline_chip(1, n_qubits=2, trace_len=200)
        runner = self._runner(
            [FeedlineSpec("light", light), FeedlineSpec("heavy", heavy)]
        )
        tasks = runner._tasks(10, seed=100)
        by_name = {t.name: t.seed for t in _placement_order(tasks)}
        # Declared order assigns seeds; dispatch order must not.
        assert by_name == {"light": 100, "heavy": 101}

    def test_reports_keep_declared_order_despite_placement(self, tmp_path):
        light = make_feedline_chip(0, n_qubits=1, trace_len=80)
        heavy = make_feedline_chip(1, n_qubits=2, trace_len=200)
        report = run_multi_feedline_pipeline(
            tiny_profile(),
            10,
            [FeedlineSpec("light", light), FeedlineSpec("heavy", heavy)],
            executor="serial",
            config=PipelineConfig(batch_size=10),
            chunk_size=10,
            registry_dir=tmp_path,
        )
        assert list(report.feedline_reports) == ["light", "heavy"]
        assert (
            report.feedline_reports["heavy"].details["feedline"] == "heavy"
        )


class TestPrefit:
    """Calibration-only dispatch through the shard pool."""

    def test_prefit_fits_cold_then_loads_warm(self, feedline_chips, tmp_path):
        with MultiFeedlineRunner(
            feedline_chips,
            tiny_profile(),
            executor="thread",
            registry_dir=tmp_path,
        ) as runner:
            assert runner.prefit() == 2, "one cold fit per feedline"
            assert runner.prefit() == 0, "second prefit serves artifacts"
            # Serving after prefit is fully warm.
            report = runner.run(20)
            assert all(
                r.calibration_cached
                for r in report.feedline_reports.values()
            )

    def test_prefit_requires_registry(self, feedline_chips):
        with MultiFeedlineRunner(
            feedline_chips, tiny_profile(), executor="serial"
        ) as runner:
            with pytest.raises(ConfigurationError, match="registry"):
                runner.prefit()


class TestClusterReportAggregation:
    def test_aggregate_report_shape(self, feedline_chips, warm_registry):
        report = run_multi_feedline_pipeline(
            tiny_profile(),
            25,
            feedline_chips,
            executor="serial",
            config=PipelineConfig(batch_size=10),
            registry_dir=warm_registry,
        )
        assert isinstance(report, ClusterReport)
        assert report.n_feedlines == 2
        assert report.n_shots == 50
        assert report.shots_per_second > 0
        worst = report.worst_p99_ms()
        assert set(worst) == {"demod", "matched_filter", "discriminate", "sink"}
        for name, feedline in report.feedline_reports.items():
            assert worst["demod"] >= feedline.stage_summaries["demod"]["p99_ms"]
        verdicts = report.budget_verdicts()
        assert set(verdicts) == {"feedline-0", "feedline-1"}
        for verdict in verdicts.values():
            assert verdict["slowdown_vs_fpga"] > 0
            assert isinstance(verdict["within_budget"], bool)
        assert 0.0 <= report.accuracy <= 1.0
        assert "multi-feedline pipeline" in report.format_table()

    def test_report_is_json_serializable(self, feedline_chips, warm_registry):
        import json

        report = run_multi_feedline_pipeline(
            tiny_profile(),
            10,
            feedline_chips,
            executor="serial",
            config=PipelineConfig(batch_size=10),
            registry_dir=warm_registry,
        )
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["n_feedlines"] == 2
        assert set(payload["feedlines"]) == {"feedline-0", "feedline-1"}
        for feedline in payload["feedlines"].values():
            assert set(feedline["stages"]) >= {
                "demod",
                "matched_filter",
                "discriminate",
            }
        assert payload["budget_verdicts"]["feedline-0"]["budget_ns"] > 0


class TestRegistryShardingIsolation:
    def test_concurrent_get_or_fit_same_key_fits_once(
        self, tmp_path, tiny_corpus
    ):
        registry = CalibrationRegistry(tmp_path)
        key = CalibrationKey("chip-a", "all", "tiny")
        fits: list[int] = []
        start = threading.Barrier(4)

        def factory():
            disc = MLRDiscriminator(epochs=4, seed=9)
            original = disc.fit

            def counting_fit(corpus, indices):
                fits.append(1)
                time.sleep(0.05)  # widen the race window
                return original(corpus, indices)

            disc.fit = counting_fit
            return disc

        results: list[tuple] = []

        def worker():
            start.wait()
            results.append(registry.get_or_fit(key, factory, tiny_corpus))

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(fits) == 1, "same-key concurrent calls must fit once"
        assert sorted(cached for _, cached in results) == [False, True, True, True]

    def test_two_registry_instances_share_the_fit_lock(
        self, tmp_path, tiny_corpus
    ):
        # Sharded workers each build their own registry object over the
        # same root; the per-key lock must still serialize them.
        key = CalibrationKey("chip-b", "all", "tiny")
        fits: list[int] = []
        start = threading.Barrier(2)

        def factory():
            disc = MLRDiscriminator(epochs=4, seed=9)
            original = disc.fit

            def counting_fit(corpus, indices):
                fits.append(1)
                time.sleep(0.05)
                return original(corpus, indices)

            disc.fit = counting_fit
            return disc

        def worker():
            start.wait()
            CalibrationRegistry(tmp_path).get_or_fit(key, factory, tiny_corpus)

        threads = [threading.Thread(target=worker) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(fits) == 1

    def test_multi_feedline_cold_then_warm(
        self, tmp_path, feedline_chips, monkeypatch
    ):
        fits: list[int] = []
        original_fit = MLRDiscriminator.fit

        def counting_fit(self, corpus, indices):
            fits.append(1)
            return original_fit(self, corpus, indices)

        monkeypatch.setattr(MLRDiscriminator, "fit", counting_fit)
        kwargs = dict(
            executor="thread",
            config=PipelineConfig(batch_size=20),
            registry_dir=tmp_path,
        )
        cold = run_multi_feedline_pipeline(
            tiny_profile(), 20, feedline_chips, **kwargs
        )
        assert len(fits) == len(feedline_chips), "one fit per feedline"
        warm = run_multi_feedline_pipeline(
            tiny_profile(), 20, feedline_chips, **kwargs
        )
        assert len(fits) == len(feedline_chips), "warm cluster must not refit"
        for report in cold.feedline_reports.values():
            assert report.calibration_cached is False
        for report in warm.feedline_reports.values():
            assert report.calibration_cached is True
        assert warm.accuracy == cold.accuracy

    def test_identical_feedlines_share_one_artifact(
        self, tmp_path, feedline_chips, monkeypatch
    ):
        # Two feedlines with the same chip and registry device resolve to
        # the same CalibrationKey: the cold threaded run must fit exactly
        # once, with the second shard served from the first's artifact.
        fits: list[int] = []
        original_fit = MLRDiscriminator.fit

        def counting_fit(self, corpus, indices):
            fits.append(1)
            return original_fit(self, corpus, indices)

        monkeypatch.setattr(MLRDiscriminator, "fit", counting_fit)
        chip = feedline_chips[0]
        specs = [
            FeedlineSpec("fl-a", chip, device="shared-group"),
            FeedlineSpec("fl-b", chip, device="shared-group"),
        ]
        report = run_multi_feedline_pipeline(
            tiny_profile(),
            20,
            specs,
            executor="thread",
            config=PipelineConfig(batch_size=20),
            registry_dir=tmp_path,
        )
        assert len(fits) == 1, "shared key must fit once across shards"
        cached = sorted(
            r.calibration_cached for r in report.feedline_reports.values()
        )
        assert cached == [False, True]
        assert len(list(CalibrationRegistry(tmp_path).keys())) == 1


def _latency_chunks(n_shots: int, chunk_size: int = 8):
    feed = np.zeros((n_shots, 4), dtype=complex)
    return [
        ShotChunk(feed[i : i + chunk_size], None, i // chunk_size)
        for i in range(0, n_shots, chunk_size)
    ]


class TestAdaptiveBatcher:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AdaptiveBatcher(8, target_seconds=0.0)
        with pytest.raises(ConfigurationError):
            AdaptiveBatcher(8, target_seconds=1.0, min_size=0)
        with pytest.raises(ConfigurationError):
            AdaptiveBatcher(8, target_seconds=1.0, min_size=4, max_size=2)
        with pytest.raises(ConfigurationError):
            AdaptiveBatcher(8, target_seconds=1.0, alpha=0.0)
        with pytest.raises(ConfigurationError):
            AdaptiveBatcher(8, target_seconds=1.0).observe(-1.0, 4)
        with pytest.raises(ConfigurationError):
            AdaptiveBatcher(8, target_seconds=1.0).observe(1.0, 0)

    def test_zero_latency_sample_cannot_poison_the_ewma(self):
        # Regression: a sub-resolution perf_counter delta observes
        # seconds == 0.0. Unclamped, such samples drag the EWMA toward
        # zero and ``int(target / ewma)`` explodes the next batch to
        # max_size regardless of the real latency; the per-shot floor
        # keeps the estimate positive and immediately recoverable.
        from repro.pipeline.batching import MIN_PER_SHOT_SECONDS

        batcher = AdaptiveBatcher(
            8, target_seconds=8e-3, max_size=4096, alpha=0.5
        )
        for _ in range(20):  # establish a real 1 ms/shot latency
            batcher.observe(1e-3 * batcher.batch_size, batcher.batch_size)
        assert batcher.batch_size == 8
        # One quantized-to-zero sample at alpha=0.5 can at most halve
        # the EWMA (double the size) — it must not jump to max_size.
        size = batcher.observe(0.0, batcher.batch_size)
        assert size <= 16
        assert batcher.ewma_per_shot_s >= MIN_PER_SHOT_SECONDS
        # A long run of zeros floors the estimate instead of zeroing it
        # (max_size is then the honest answer for a genuinely
        # immeasurable stage)...
        for _ in range(100):
            batcher.observe(0.0, batcher.batch_size)
        assert batcher.ewma_per_shot_s >= MIN_PER_SHOT_SECONDS
        assert batcher.batch_size == 4096
        # ...and a single real sample immediately re-constrains it.
        size = batcher.observe(1e-3 * batcher.batch_size, batcher.batch_size)
        assert size == int(8e-3 / batcher.ewma_per_shot_s)
        assert size < 4096

    @pytest.mark.parametrize(
        "target_ms, per_shot_ms, expected",
        [
            (10.0, 1.0, 10),  # converges to target/latency
            (64.0, 1.0, 64),
            (0.5, 1.0, 1),  # over-budget latency clamps to min, never 0
            (1e6, 1.0, 256),  # huge headroom clamps to max_size
        ],
    )
    def test_converges_to_clamped_ratio(self, target_ms, per_shot_ms, expected):
        batcher = AdaptiveBatcher(
            8, target_seconds=target_ms * 1e-3, max_size=256, alpha=0.5
        )
        for _ in range(40):
            size = batcher.observe(per_shot_ms * 1e-3 * batcher.batch_size,
                                   batcher.batch_size)
        assert size == expected
        assert batcher.batch_size == expected
        # Stability: further identical observations do not move the size.
        assert batcher.observe(per_shot_ms * 1e-3 * size, size) == expected

    @pytest.mark.parametrize("per_shot_ms", [0.01, 0.1, 1.0, 25.0])
    def test_sizes_always_within_bounds(self, per_shot_ms):
        batcher = AdaptiveBatcher(16, target_seconds=2e-3, max_size=128)
        rng = np.random.default_rng(5)
        for _ in range(60):
            jitter = 1.0 + 0.5 * rng.random()
            batcher.observe(
                per_shot_ms * 1e-3 * jitter * batcher.batch_size,
                batcher.batch_size,
            )
        assert batcher.n_observations == 60
        low, high = batcher.chosen_range
        assert low >= 1
        assert high <= 128

    def test_zero_latency_opens_up_to_max(self):
        batcher = AdaptiveBatcher(4, target_seconds=1e-3, max_size=32)
        assert batcher.observe(0.0, 4) == 32

    def test_ewma_smooths_spikes(self):
        batcher = AdaptiveBatcher(10, target_seconds=10e-3, alpha=0.2)
        batcher.observe(1e-3 * 10, 10)  # 1 ms/shot -> size 10
        before = batcher.batch_size
        batcher.observe(20e-3, 1)  # one 20 ms/shot outlier
        after = batcher.batch_size
        # The outlier shrinks the batch, but the EWMA damps it above the
        # instantaneous answer (10 ms target / 20 ms per shot -> size 1;
        # the blended estimate of 4.8 ms/shot still allows a size-2 batch).
        assert 1 < after < before
        assert after == 2

    def test_rebatch_follows_resizes(self):
        batcher = AdaptiveBatcher(4, target_seconds=1.0, max_size=16)
        sizes = []
        stream = batcher.rebatch(_latency_chunks(64, chunk_size=8))
        for batch in stream:
            sizes.append(batch.n_shots)
            # Pretend each shot takes 1/8 s: converges toward size 8.
            batcher.observe(batch.n_shots / 8.0, batch.n_shots)
        assert sizes[0] == 4  # initial size honored before feedback
        assert 8 in sizes  # resize took effect mid-stream
        assert sum(sizes) == 64  # no shot dropped

    def test_fixed_path_when_adaptive_off(self, tiny_corpus):
        # PipelineConfig(adaptive_batching=False) must keep the plain
        # MicroBatcher: constant batch size, no adaptive details.
        from repro.discriminators import MLRDiscriminator as MLR
        from repro.ml import stratified_split
        from repro.pipeline import CorpusTraceSource, ReadoutPipeline

        train, _ = stratified_split(tiny_corpus.labels, 0.5, seed=21)
        disc = MLR(epochs=6, learning_rate=3e-3, seed=22).fit(
            tiny_corpus, train
        )
        pipeline = ReadoutPipeline(
            disc, tiny_corpus.chip, PipelineConfig(batch_size=50)
        )
        report = pipeline.run(CorpusTraceSource(tiny_corpus, chunk_size=45))
        assert report.details["adaptive_batching"] is False
        assert "adaptive" not in report.details
        assert report.n_batches == -(-tiny_corpus.n_traces // 50)

    def test_adaptive_run_reports_trajectory(self, tiny_corpus):
        from repro.discriminators import MLRDiscriminator as MLR
        from repro.ml import stratified_split
        from repro.pipeline import CorpusTraceSource, ReadoutPipeline

        train, _ = stratified_split(tiny_corpus.labels, 0.5, seed=21)
        disc = MLR(epochs=6, learning_rate=3e-3, seed=22).fit(
            tiny_corpus, train
        )
        pipeline = ReadoutPipeline(
            disc,
            tiny_corpus.chip,
            PipelineConfig(
                batch_size=8, adaptive_batching=True, max_batch_size=64
            ),
        )
        report = pipeline.run(CorpusTraceSource(tiny_corpus, chunk_size=40))
        adaptive = report.details["adaptive"]
        assert report.details["adaptive_batching"] is True
        assert 1 <= adaptive["min_batch_size"]
        assert adaptive["max_batch_size"] <= 64
        assert adaptive["target_batch_ms"] > 0
        assert report.n_shots == tiny_corpus.n_traces
