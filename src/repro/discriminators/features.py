"""Matched-filter feature extraction for the paper's discriminator.

For each qubit the extractor builds (Tab. III):

- three Qubit Matched Filters (QMF) separating the state pairs
  (|0>,|1>), (|0>,|2>), (|1>,|2>);
- three Relaxation Matched Filters (RMF) for |1>->|0>, |2>->|0>, |2>->|1>
  error traces;
- three Excitation Matched Filters (EMF) for |0>->|1>, |0>->|2>, |1>->|2>
  error traces.

Error traces are mined with the centroid rule of
:mod:`repro.discriminators.error_traces`; when a pair has too few mined
instances to estimate a kernel, the extractor falls back to the pair's QMF
kernel (a defined, informative default) and records the fallback.

Feature layout: qubit-major, filter-minor —
``[q0-qmf01, q0-qmf02, q0-qmf12, q0-rmf10, ..., q1-qmf01, ...]`` giving
``9 * n_qubits`` columns (45 for the five-qubit chip, the paper's input
size). RMF/EMF groups can be disabled to reproduce HERQULES' 6-per-qubit
feature set or for the feature ablation.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import ReadoutCorpus
from repro.discriminators.error_traces import tag_error_traces
from repro.dsp.demod import demod_tone, demodulate
from repro.dsp.filters import boxcar_decimate
from repro.dsp.matched_filter import (
    FusedKernelBank,
    MatchedFilterBank,
    fuse_demod_decimation,
    matched_filter_kernel,
)
from repro.dsp.mtv import mtv_points
from repro.exceptions import ConfigurationError, DataError, NotFittedError

__all__ = ["MatchedFilterFeatureExtractor"]

_QMF_PAIRS = ((0, 1), (0, 2), (1, 2))
_RMF_PAIRS = ((1, 0), (2, 0), (2, 1))
_EMF_PAIRS = ((0, 1), (0, 2), (1, 2))


class MatchedFilterFeatureExtractor:
    """Builds and applies the per-qubit QMF/RMF/EMF banks.

    Parameters
    ----------
    include_qmf, include_rmf, include_emf:
        Which filter families to build (all three for the paper's design;
        QMF+RMF for HERQULES; ablations toggle the rest).
    decimation:
        Boxcar decimation factor applied after demodulation, before kernel
        estimation and scoring (the paper's filtering stage).
    variance_mode:
        Matched-filter normalization; see
        :func:`repro.dsp.matched_filter.matched_filter_kernel`.
    min_error_traces:
        Minimum mined instances required to fit an RMF/EMF kernel; below
        this the pair's QMF kernel is substituted.
    """

    def __init__(
        self,
        include_qmf: bool = True,
        include_rmf: bool = True,
        include_emf: bool = True,
        decimation: int = 5,
        variance_mode: str = "sum",
        min_error_traces: int = 6,
    ) -> None:
        if not (include_qmf or include_rmf or include_emf):
            raise ConfigurationError("at least one filter family is required")
        if decimation < 1:
            raise ConfigurationError(f"decimation must be >= 1, got {decimation}")
        if min_error_traces < 2:
            raise ConfigurationError("min_error_traces must be >= 2")
        self.include_qmf = include_qmf
        self.include_rmf = include_rmf
        self.include_emf = include_emf
        self.decimation = decimation
        self.variance_mode = variance_mode
        self.min_error_traces = min_error_traces
        self.banks_: list[MatchedFilterBank] | None = None
        self.fallbacks_: list[tuple[str, ...]] | None = None
        self._chip = None

    @property
    def filters_per_qubit(self) -> int:
        """Number of kernels per qubit (3 per enabled family)."""
        return 3 * (
            int(self.include_qmf) + int(self.include_rmf) + int(self.include_emf)
        )

    @property
    def feature_names(self) -> tuple[str, ...]:
        """Column names of :meth:`transform` output."""
        if self.banks_ is None:
            raise NotFittedError("extractor is not fitted")
        return tuple(
            f"q{q}-{name}"
            for q, bank in enumerate(self.banks_)
            for name in bank.names
        )

    def channel_baseband(
        self,
        feedline: np.ndarray,
        if_frequency_ghz: float,
        times_ns: np.ndarray,
    ) -> np.ndarray:
        """Demodulate and decimate one qubit channel of raw feedline traces.

        The shared front half of both offline :meth:`transform` and the
        streaming engine's channel shards.
        """
        return boxcar_decimate(
            demodulate(feedline, if_frequency_ghz, times_ns), self.decimation
        )

    def score_baseband(self, qubit: int, traces: np.ndarray) -> np.ndarray:
        """Matched-filter scores for one qubit's decimated baseband traces.

        Accepts windows no longer than the fitted one; kernels are
        truncated to match (the paper's no-retraining fast-readout mode).
        """
        if self.banks_ is None:
            raise NotFittedError("extractor is not fitted")
        bank = self.banks_[qubit]
        n_bins = traces.shape[1]
        if n_bins > bank.trace_len:
            raise DataError(
                f"corpus window ({n_bins} bins) exceeds fitted window "
                f"({bank.trace_len} bins)"
            )
        if n_bins < bank.trace_len:
            bank = bank.truncated(n_bins)
        return bank.transform(traces)

    def fused_kernel_bank(self, chip, trace_len: int) -> FusedKernelBank:
        """All qubits' kernels with demod tone and decimation folded in.

        Builds the stacked :class:`~repro.dsp.matched_filter
        .FusedKernelBank` for a raw readout window of ``trace_len``
        samples on ``chip``: row block ``q`` is qubit ``q``'s fitted
        kernels (truncated to the window, the no-retraining fast-readout
        mode) multiplied through by its demod tone and the boxcar
        weights. Applying the bank to a raw feedline batch reproduces
        ``score_baseband(q, channel_baseband(...))`` for every channel
        in one matmul — the serving engine's zero-copy front half.
        """
        if self.banks_ is None:
            raise NotFittedError("extractor is not fitted")
        if len(chip.qubits) != len(self.banks_):
            raise DataError(
                f"extractor calibrated for {len(self.banks_)} qubits, "
                f"chip has {len(chip.qubits)}"
            )
        n_bins = trace_len // self.decimation
        if n_bins == 0:
            raise DataError(
                f"trace length {trace_len} shorter than decimation "
                f"factor {self.decimation}"
            )
        fitted_bins = self.banks_[0].trace_len
        if n_bins > fitted_bins:
            raise DataError(
                f"corpus window ({n_bins} bins) exceeds fitted window "
                f"({fitted_bins} bins)"
            )
        times = chip.sample_times(trace_len)[: n_bins * self.decimation]
        rows = [
            fuse_demod_decimation(
                bank.kernels[:, :n_bins],
                demod_tone(chip.qubits[q].if_frequency_ghz, times),
                self.decimation,
            )
            for q, bank in enumerate(self.banks_)
        ]
        return FusedKernelBank(
            weights=np.vstack(rows),
            filters_per_qubit=self.filters_per_qubit,
            decimation=self.decimation,
        )

    def _demodulated(self, corpus: ReadoutCorpus, qubit: int) -> np.ndarray:
        return self.channel_baseband(
            corpus.feedline,
            corpus.chip.qubits[qubit].if_frequency_ghz,
            corpus.chip.sample_times(corpus.trace_len),
        )

    def _fit_qubit(
        self, traces: np.ndarray, levels: np.ndarray
    ) -> tuple[MatchedFilterBank, tuple[str, ...]]:
        """Build one qubit's bank from decimated baseband traces."""
        by_level = {s: traces[levels == s] for s in range(3)}
        for s, grp in by_level.items():
            if grp.shape[0] < 2:
                raise DataError(
                    f"need >= 2 training traces for level {s}, got {grp.shape[0]}"
                )

        qmf = {
            (a, b): matched_filter_kernel(
                by_level[a], by_level[b], self.variance_mode
            )
            for a, b in _QMF_PAIRS
        }

        names: list[str] = []
        kernels: list[np.ndarray] = []
        fallbacks: list[str] = []

        if self.include_qmf:
            for a, b in _QMF_PAIRS:
                names.append(f"qmf{a}{b}")
                kernels.append(qmf[(a, b)])

        if self.include_rmf or self.include_emf:
            points = mtv_points(traces)
            error_masks = tag_error_traces(points, levels, 3)

        def add_error_filter(kind: str, source: int, target: int) -> None:
            name = f"{kind}{source}{target}"
            mask = error_masks[(source, target)]
            clean = by_level[source]
            errors = traces[mask]
            if errors.shape[0] >= self.min_error_traces:
                kernel = matched_filter_kernel(clean, errors, self.variance_mode)
            else:
                pair = (min(source, target), max(source, target))
                kernel = qmf[pair]
                fallbacks.append(name)
            names.append(name)
            kernels.append(kernel)

        if self.include_rmf:
            for source, target in _RMF_PAIRS:
                add_error_filter("rmf", source, target)
        if self.include_emf:
            for source, target in _EMF_PAIRS:
                add_error_filter("emf", source, target)

        bank = MatchedFilterBank(tuple(names), np.vstack(kernels))
        return bank, tuple(fallbacks)

    def fit(
        self, corpus: ReadoutCorpus, indices: np.ndarray | None = None
    ) -> "MatchedFilterFeatureExtractor":
        """Estimate all kernels from the selected corpus rows."""
        idx = (
            np.arange(corpus.n_traces) if indices is None else np.asarray(indices)
        )
        subset = corpus.subset(idx)
        banks, fallbacks = [], []
        for q in range(corpus.n_qubits):
            traces = self._demodulated(subset, q)
            bank, fb = self._fit_qubit(traces, subset.qubit_labels(q))
            banks.append(bank)
            fallbacks.append(fb)
        self.banks_ = banks
        self.fallbacks_ = fallbacks
        self._chip = corpus.chip
        return self

    def transform(
        self, corpus: ReadoutCorpus, indices: np.ndarray | None = None
    ) -> np.ndarray:
        """Score the selected rows; returns (n_shots, 9 * n_qubits) floats.

        Accepts corpora with a readout window no longer than the fitted
        one; kernels are truncated to match (the paper's no-retraining
        fast-readout mode).
        """
        if self.banks_ is None:
            raise NotFittedError("extractor is not fitted")
        idx = (
            np.arange(corpus.n_traces) if indices is None else np.asarray(indices)
        )
        subset = corpus.subset(idx)
        blocks = [
            self.score_baseband(q, self._demodulated(subset, q))
            for q in range(len(self.banks_))
        ]
        return np.concatenate(blocks, axis=1)

    def fit_transform(
        self, corpus: ReadoutCorpus, indices: np.ndarray | None = None
    ) -> np.ndarray:
        """Fit on the selected rows and return their features."""
        return self.fit(corpus, indices).transform(corpus, indices)

    # -- calibration-artifact support ----------------------------------

    def artifact_state(self) -> tuple[dict, dict[str, np.ndarray]]:
        """Fitted state as (JSON-able meta, named kernel arrays).

        Used by discriminator artifact export: the kernels are calibration
        data, so persisting them lets repeated runs skip re-mining error
        traces and re-estimating filters.
        """
        if self.banks_ is None:
            raise NotFittedError("extractor is not fitted")
        meta = {
            "include_qmf": self.include_qmf,
            "include_rmf": self.include_rmf,
            "include_emf": self.include_emf,
            "decimation": self.decimation,
            "variance_mode": self.variance_mode,
            "min_error_traces": self.min_error_traces,
            "bank_names": [list(bank.names) for bank in self.banks_],
            "fallbacks": [list(fb) for fb in self.fallbacks_],
        }
        arrays = {
            f"bank{q}_kernels": bank.kernels
            for q, bank in enumerate(self.banks_)
        }
        return meta, arrays

    @classmethod
    def from_artifact_state(
        cls, meta: dict, arrays: dict[str, np.ndarray]
    ) -> "MatchedFilterFeatureExtractor":
        """Rebuild a fitted extractor from :meth:`artifact_state` output."""
        extractor = cls(
            include_qmf=bool(meta["include_qmf"]),
            include_rmf=bool(meta["include_rmf"]),
            include_emf=bool(meta["include_emf"]),
            decimation=int(meta["decimation"]),
            variance_mode=str(meta["variance_mode"]),
            min_error_traces=int(meta["min_error_traces"]),
        )
        extractor.banks_ = [
            MatchedFilterBank(tuple(names), np.asarray(arrays[f"bank{q}_kernels"]))
            for q, names in enumerate(meta["bank_names"])
        ]
        extractor.fallbacks_ = [tuple(fb) for fb in meta["fallbacks"]]
        return extractor
