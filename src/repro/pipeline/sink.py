"""Result sinks: where per-shot labels go after discrimination.

The paper's downstream consumer is QEC leakage speculation — every shot's
multi-level labels feed ERASER+M evidence accumulation. Sinks here are
*backpressure-aware*: :class:`QueueingSink` hands batches to a consumer
thread through a bounded queue, so a slow consumer blocks the dispatch
loop instead of letting unprocessed labels pile up without limit (the
pipeline's "sink" stage latency measures exactly that blocking).
"""

from __future__ import annotations

import queue
import threading
from abc import ABC, abstractmethod

import numpy as np

from repro.exceptions import ConfigurationError
from repro.qec.eraser import EraserConfig, LevelStreamSpeculator

__all__ = [
    "ResultSink",
    "CollectingSink",
    "QueueingSink",
    "EraserSpeculationSink",
]


class ResultSink(ABC):
    """Consumes discriminated micro-batches."""

    @abstractmethod
    def consume(self, levels: np.ndarray, joint: np.ndarray, batch_id: int) -> None:
        """Accept one batch of per-qubit levels and joint labels.

        May block — that is how backpressure reaches the scheduler.
        """

    def close(self) -> dict:
        """Flush and return a JSON-able summary. Idempotent."""
        return {}


class CollectingSink(ResultSink):
    """Keeps every label in memory — for tests and small offline runs."""

    def __init__(self) -> None:
        self._levels: list[np.ndarray] = []
        self._joint: list[np.ndarray] = []

    def consume(self, levels: np.ndarray, joint: np.ndarray, batch_id: int) -> None:
        self._levels.append(np.asarray(levels))
        self._joint.append(np.asarray(joint))

    @property
    def levels(self) -> np.ndarray:
        if not self._levels:
            return np.empty((0, 0), dtype=np.int64)
        return np.concatenate(self._levels, axis=0)

    @property
    def joint(self) -> np.ndarray:
        if not self._joint:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(self._joint, axis=0)

    def close(self) -> dict:
        return {"shots_seen": int(self.joint.shape[0])}


class QueueingSink(ResultSink):
    """Runs an inner sink on a consumer thread behind a bounded queue.

    Parameters
    ----------
    inner:
        The sink doing the actual work on the consumer thread.
    max_pending:
        Queue capacity in batches. When the consumer lags this far
        behind, :meth:`consume` blocks — bounded memory, visible
        backpressure.
    """

    _SENTINEL = None

    def __init__(self, inner: ResultSink, max_pending: int = 8) -> None:
        if max_pending < 1:
            raise ConfigurationError(f"max_pending must be >= 1, got {max_pending}")
        self.inner = inner
        self.max_pending = int(max_pending)
        self._queue: queue.Queue = queue.Queue(maxsize=self.max_pending)
        self._error: BaseException | None = None
        self._summary: dict | None = None
        self._closed = False
        self._worker = threading.Thread(target=self._drain, daemon=True)
        self._worker.start()

    def _drain(self) -> None:
        while True:
            item = self._queue.get()
            try:
                if item is self._SENTINEL:
                    return
                levels, joint, batch_id = item
                if self._error is None:
                    self.inner.consume(levels, joint, batch_id)
            except BaseException as exc:  # repro: allow(broad-except) captured and re-raised by close()
                self._error = exc
            finally:
                self._queue.task_done()

    @property
    def pending(self) -> int:
        """Batches currently queued (approximate, for instrumentation)."""
        return self._queue.qsize()

    def consume(self, levels: np.ndarray, joint: np.ndarray, batch_id: int) -> None:
        if self._closed:
            raise ConfigurationError("sink is closed")
        self._queue.put((levels, joint, batch_id))

    def close(self) -> dict:
        """Flush, join the consumer, and summarize.

        Idempotent on both paths: a consumer error is re-raised on every
        close, a clean summary is computed once and cached.
        """
        if not self._closed:
            self._closed = True
            self._queue.put(self._SENTINEL)
            self._worker.join()
        if self._error is not None:
            raise self._error
        if self._summary is None:
            self._summary = dict(self.inner.close())
            self._summary["max_pending"] = self.max_pending
        return self._summary


class EraserSpeculationSink(ResultSink):
    """Feeds per-shot labels into ERASER+M leakage speculation.

    Each shot's multi-level labels are treated as one readout cycle of
    direct leakage evidence for :class:`repro.qec.eraser
    .LevelStreamSpeculator`; the summary reports how many LRC requests the
    stream triggered. Wrap in :class:`QueueingSink` for backpressure.
    """

    def __init__(
        self, n_qubits: int, config: EraserConfig | None = None
    ) -> None:
        self.speculator = LevelStreamSpeculator(n_qubits, config)

    def consume(self, levels: np.ndarray, joint: np.ndarray, batch_id: int) -> None:
        self.speculator.update(levels)

    def close(self) -> dict:
        return self.speculator.summary()
