"""Leakage speculation on a distance-7 surface code (Sec III / Table I).

Shows the downstream value of multi-level readout: the repeated-CNOT
malfunction of a leaked control, then ERASER vs ERASER+M speculation over
10 QEC cycles.

Run with::

    python examples/qec_speculation.py
"""

from __future__ import annotations

from repro.qec import EraserConfig, RotatedSurfaceCode, run_eraser
from repro.qudit import QuditCircuit


def main() -> None:
    # --- Part 1: why leakage must be caught (Sec III.A) -----------------
    print("repeated CNOTs with a leaked control (density-matrix exact):")
    circuit = QuditCircuit(2)
    for n in range(1, 13):
        circuit.leaky_cnot(0, 1)
        if n in (1, 6, 12):
            rho = circuit.run((2, 0))
            print(f"  after {n:2d} CNOTs: target leakage "
                  f"{rho.leakage_population(1):.3f}")
    baseline = QuditCircuit(2)
    for _ in range(12):
        baseline.leaky_cnot(0, 1)
    rho_norm = baseline.run((1, 0))
    rho_leak = circuit.run((2, 0))
    print(f"  growth ratio vs normal control: "
          f"{rho_leak.leakage_population(1) / rho_norm.leakage_population(1):.1f}x "
          f"(paper ~3x)\n")

    # --- Part 2: ERASER vs ERASER+M on a d=7 patch (Table I) ------------
    code = RotatedSurfaceCode(7)
    print(f"surface code d=7: {code.n_data} data qubits, "
          f"{code.n_ancilla} stabilizers")
    for name, multi_level in (("ERASER", False), ("ERASER+M", True)):
        report = run_eraser(
            code,
            cycles=10,
            shots=200,
            config=EraserConfig(multi_level=multi_level),
            seed=11,
        )
        print(
            f"  {name:9s}: speculation accuracy {report.accuracy:.3f}, "
            f"leakage population {report.leakage_population:.2e}, "
            f"LRCs/shot {report.lrc_applications:.1f}"
        )
    print("\nmulti-level readout detects leaked ancillas directly, cleans the")
    print("syndrome stream, and catches transported leakage sooner — better")
    print("accuracy AND lower residual leakage (paper Table I).")


if __name__ == "__main__":
    main()
