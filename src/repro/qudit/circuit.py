"""A small gate-list circuit container for qudit experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.exceptions import ConfigurationError
from repro.qudit.channels import leaky_cnot_kraus
from repro.qudit.density import DensityMatrix
from repro.qudit.gates import cnot_embedded, hadamard_embedded, x01, x12

__all__ = ["QuditCircuit"]


@dataclass
class _Operation:
    kind: str  # "unitary" | "kraus"
    payload: object
    targets: tuple[int, ...]
    label: str


@dataclass
class QuditCircuit:
    """An ordered list of unitaries and channels on ``n_qudits`` qutrits.

    Build with the fluent helpers, then :meth:`run` on an initial product
    state. Example — the paper's repeated-CNOT leakage experiment::

        circuit = QuditCircuit(2)
        for _ in range(12):
            circuit.leaky_cnot(0, 1)
        rho = circuit.run(initial_levels=(2, 0))
        rho.leakage_population(1)
    """

    n_qudits: int
    d: int = 3
    operations: list[_Operation] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.n_qudits < 1:
            raise ConfigurationError("n_qudits must be >= 1")

    def _check_targets(self, targets: tuple[int, ...]) -> None:
        for t in targets:
            if not 0 <= t < self.n_qudits:
                raise ConfigurationError(
                    f"target {t} out of range [0, {self.n_qudits})"
                )

    def unitary(
        self, gate: np.ndarray, targets: tuple[int, ...], label: str = "U"
    ) -> "QuditCircuit":
        """Append an arbitrary unitary on ``targets``."""
        self._check_targets(targets)
        self.operations.append(_Operation("unitary", gate, targets, label))
        return self

    def kraus(
        self,
        operators: list[np.ndarray],
        targets: tuple[int, ...],
        label: str = "channel",
    ) -> "QuditCircuit":
        """Append a Kraus channel on ``targets``."""
        self._check_targets(targets)
        self.operations.append(_Operation("kraus", operators, targets, label))
        return self

    def x01(self, qudit: int) -> "QuditCircuit":
        """Pi pulse on the 0-1 transition."""
        return self.unitary(x01(self.d), (qudit,), "x01")

    def x12(self, qudit: int) -> "QuditCircuit":
        """Pi pulse on the 1-2 transition (prepares |2> from |1>)."""
        return self.unitary(x12(self.d), (qudit,), "x12")

    def h(self, qudit: int) -> "QuditCircuit":
        """Embedded Hadamard."""
        return self.unitary(hadamard_embedded(self.d), (qudit,), "h")

    def cnot(self, control: int, target: int) -> "QuditCircuit":
        """Ideal embedded CNOT."""
        return self.unitary(cnot_embedded(self.d), (control, target), "cnot")

    def leaky_cnot(
        self,
        control: int,
        target: int,
        p_flip: float = 0.05,
        p_transfer: float = 0.0175,
        p_leak: float = 0.011,
    ) -> "QuditCircuit":
        """CNOT with the leakage-faulty behavior of Sec III.A."""
        return self.kraus(
            leaky_cnot_kraus(p_flip, p_transfer, p_leak, self.d),
            (control, target),
            "leaky_cnot",
        )

    @property
    def depth(self) -> int:
        """Number of appended operations."""
        return len(self.operations)

    def run(
        self, initial_levels: tuple[int, ...] | list[int] | None = None
    ) -> DensityMatrix:
        """Execute on a fresh product state and return the final state."""
        levels = (
            [0] * self.n_qudits if initial_levels is None else list(initial_levels)
        )
        if len(levels) != self.n_qudits:
            raise ConfigurationError(
                f"initial_levels must have {self.n_qudits} entries"
            )
        state = DensityMatrix.from_levels(levels, self.d)
        for op in self.operations:
            if op.kind == "unitary":
                state.apply_unitary(op.payload, op.targets)
            else:
                state.apply_kraus(op.payload, op.targets)
        return state
