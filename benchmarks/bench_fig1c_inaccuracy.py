"""Fig 1(c) bench: per-qubit classification inaccuracy, three designs.

Asserted shape: the paper's design has the lowest inaccuracy on every
qubit among the matched-filter designs, and the hard qubit (Q2) is the
worst qubit for every design.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments.fig1c import run_fig1c


def test_fig1c_per_qubit_inaccuracy(benchmark, profile):
    result = run_once(benchmark, run_fig1c, profile)
    print("\n" + result.format_table())
    ours = np.asarray(result.inaccuracy["ours"])
    herq = np.asarray(result.inaccuracy["herqules"])
    assert np.all(ours <= herq + 0.01)
    for design, values in result.inaccuracy.items():
        assert int(np.argmax(values)) == 1, design  # Q2 worst everywhere
