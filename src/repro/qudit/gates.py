"""Qutrit gates: subspace pulses and embedded two-level gates.

Two-level ("embedded") gates act as the familiar qubit unitaries on the
{|0>, |1>} computational subspace and as the identity on leaked levels —
exactly how a calibrated microwave pulse treats a transmon that has left
the computational subspace (to first order).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = [
    "x01",
    "x12",
    "x_embedded",
    "z_embedded",
    "hadamard_embedded",
    "cnot_embedded",
    "cz_embedded",
    "swap_full",
]


def _validate_d(d: int) -> None:
    if d < 3:
        raise ConfigurationError(f"qutrit gates need d >= 3, got {d}")


def x01(d: int = 3) -> np.ndarray:
    """Pi pulse on the 0-1 transition (identity elsewhere)."""
    _validate_d(d)
    gate = np.eye(d, dtype=complex)
    gate[0, 0] = gate[1, 1] = 0.0
    gate[0, 1] = gate[1, 0] = 1.0
    return gate


def x12(d: int = 3) -> np.ndarray:
    """Pi pulse on the 1-2 transition (used to prepare |2> in Sec III.A)."""
    _validate_d(d)
    gate = np.eye(d, dtype=complex)
    gate[1, 1] = gate[2, 2] = 0.0
    gate[1, 2] = gate[2, 1] = 1.0
    return gate


def x_embedded(d: int = 3) -> np.ndarray:
    """Qubit X on the computational subspace, identity on leaked levels."""
    return x01(d)


def z_embedded(d: int = 3) -> np.ndarray:
    """Qubit Z on the computational subspace, identity on leaked levels."""
    _validate_d(d)
    gate = np.eye(d, dtype=complex)
    gate[1, 1] = -1.0
    return gate


def hadamard_embedded(d: int = 3) -> np.ndarray:
    """Qubit Hadamard on the computational subspace."""
    _validate_d(d)
    gate = np.eye(d, dtype=complex)
    inv_sqrt2 = 1.0 / np.sqrt(2.0)
    gate[0, 0] = gate[0, 1] = gate[1, 0] = inv_sqrt2
    gate[1, 1] = -inv_sqrt2
    return gate


def cnot_embedded(d: int = 3) -> np.ndarray:
    """Ideal CNOT on two qudits: flips the target's 0-1 subspace when the
    control is |1>, identity when the control is |0> or leaked."""
    _validate_d(d)
    dim = d * d
    gate = np.eye(dim, dtype=complex)
    block = x01(d)
    # Rows/cols for control level 1 occupy the slice [d, 2d).
    gate[d : 2 * d, d : 2 * d] = block
    return gate


def cz_embedded(d: int = 3) -> np.ndarray:
    """Ideal CZ on two qudits: -1 phase on |11>, identity elsewhere."""
    _validate_d(d)
    dim = d * d
    gate = np.eye(dim, dtype=complex)
    idx = d * 1 + 1
    gate[idx, idx] = -1.0
    return gate


def swap_full(d: int = 3) -> np.ndarray:
    """Full d-level SWAP of two qudits (moves leakage between them)."""
    _validate_d(d)
    dim = d * d
    gate = np.zeros((dim, dim), dtype=complex)
    for a in range(d):
        for b in range(d):
            gate[b * d + a, a * d + b] = 1.0
    return gate
