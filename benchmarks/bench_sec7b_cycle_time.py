"""Sec VII.B bench: QEC cycle-time reduction from the faster readout.

Paper: up to 17% for surface-17.
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.sec7b import run_sec7b_cycle_time


def test_sec7b_cycle_time_reduction(benchmark, profile):
    result = run_once(benchmark, run_sec7b_cycle_time, profile)
    print("\n" + result.format_table())
    assert result.reduction == pytest.approx(0.17, abs=0.005)
    assert result.baseline_cycle_ns > result.reduced_cycle_ns
