"""Smoke tests: every examples/*.py main runs clean at its quick sizing.

The examples are documentation that executes; each is imported from its
file path and its ``main()`` run with stdout captured, so a refactor that
breaks an example's imports or API usage fails the suite instead of the
next reader.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_PATHS = sorted(EXAMPLES_DIR.glob("*.py"))


def _load_example(path: Path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_examples_directory_found():
    assert EXAMPLE_PATHS, f"no examples found under {EXAMPLES_DIR}"


@pytest.mark.parametrize(
    "path", EXAMPLE_PATHS, ids=[p.stem for p in EXAMPLE_PATHS]
)
def test_example_main_runs(path, capsys):
    module = _load_example(path)
    assert hasattr(module, "main"), f"{path.name} has no main()"
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"{path.name} produced no output"
