"""Dispersive cavity response: steady states and exact segment evolution.

With the qubit frozen in level ``s``, the driven readout resonator field
obeys the linear Langevin equation

    d alpha / dt = -(i delta_s + kappa/2) alpha - i epsilon,

whose solution from any initial field ``alpha_0`` is

    alpha(t) = alpha_ss(s) + (alpha_0 - alpha_ss(s)) exp(-(i delta_s + kappa/2) t),

with the steady state ``alpha_ss(s) = -i epsilon / (i delta_s + kappa/2)``.
Because qubit jumps make the level trajectory piecewise constant, the full
trace is an exact chain of these segment solutions; trajectories.py applies
the per-sample recurrence form.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["steady_state_field", "segment_decay", "evolve_segment"]


def steady_state_field(
    drive: float | np.ndarray, delta: float | np.ndarray, kappa: float
) -> np.ndarray:
    """Steady-state complex field for drive ``epsilon`` and detuning ``delta``."""
    if np.any(np.asarray(kappa) <= 0):
        raise ConfigurationError("kappa must be positive")
    return -1j * np.asarray(drive) / (1j * np.asarray(delta) + kappa / 2.0)


def segment_decay(
    delta: float | np.ndarray, kappa: float, dt: float
) -> np.ndarray:
    """One-sample propagator ``exp(-(i delta + kappa/2) dt)``."""
    if dt <= 0:
        raise ConfigurationError("dt must be positive")
    return np.exp(-(1j * np.asarray(delta) + kappa / 2.0) * dt)


def evolve_segment(
    alpha0: np.ndarray,
    alpha_ss: np.ndarray,
    delta: float | np.ndarray,
    kappa: float,
    times: np.ndarray,
) -> np.ndarray:
    """Exact field at ``times`` (from segment start) given the initial field.

    Broadcasts over leading axes of ``alpha0``/``alpha_ss``; ``times`` adds
    a trailing axis.
    """
    times = np.asarray(times, dtype=np.float64)
    rate = 1j * np.asarray(delta) + kappa / 2.0
    decay = np.exp(-np.multiply.outer(np.broadcast_to(rate, np.shape(alpha0)), times))
    alpha0 = np.asarray(alpha0)[..., None]
    alpha_ss = np.asarray(alpha_ss)[..., None]
    return alpha_ss + (alpha0 - alpha_ss) * decay
