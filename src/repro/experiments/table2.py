"""Table II — three-level fidelity of the existing baselines.

Paper: FNN reaches F5Q = 0.898 while HERQULES collapses to 0.591; the
collapse is driven by HERQULES' exponential joint head over 30 matched-
filter scores. At reduced (profile) corpus sizes, the FNN is additionally
data-starved (687k parameters), which lowers its absolute numbers; the
HERQULES < OURS ordering and the joint-head weakness are preserved and the
FNN's data-scaling is recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api.registry import experiment
from repro.api.results import ExperimentResult
from repro.config import QUICK, Profile
from repro.experiments.common import get_trained
from repro.experiments.report import format_rows

__all__ = ["Table2Result", "run_table2"]

PAPER_VALUES = {
    "fnn": {"fidelities": (0.967, 0.728, 0.927, 0.932, 0.962), "f5q": 0.898},
    "herqules": {
        "fidelities": (0.598, 0.549, 0.608, 0.607, 0.594),
        "f5q": 0.591,
    },
}


@dataclass(frozen=True)
class Table2Result(ExperimentResult):
    """Measured per-qubit fidelity of FNN and HERQULES."""

    rows: list[dict]

    def _measured(self) -> dict:
        return {r["design"]: {k: v for k, v in r.items() if k != "design"}
                for r in self.rows}

    def _paper_values(self) -> dict:
        return PAPER_VALUES

    def format_table(self) -> str:
        return format_rows(
            ("Design", "Q1", "Q2", "Q3", "Q4", "Q5", "F5Q", "Paper F5Q"),
            [
                (
                    r["design"],
                    *[float(f) for f in r["fidelities"]],
                    r["f5q"],
                    PAPER_VALUES[r["design"]]["f5q"],
                )
                for r in self.rows
            ],
            title="Table II: three-level readout fidelity of existing designs",
        )


@experiment("table2", tags=("fidelity",), paper_ref="Table II")
def run_table2(profile: Profile = QUICK) -> Table2Result:
    """Fit and score the FNN and HERQULES baselines."""
    rows = []
    for design in ("fnn", "herqules"):
        trained = get_trained(profile, design)
        rows.append(
            {
                "design": design,
                "fidelities": tuple(trained.fidelities),
                "f5q": trained.f5q,
                "n_parameters": trained.n_parameters,
            }
        )
    return Table2Result(rows=rows)
