"""Minibatch training loop with validation-based early stopping."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import as_1d_int, as_2d_float, check_random_state
from repro.exceptions import ConfigurationError, ShapeError
from repro.ml.nn.losses import softmax_cross_entropy
from repro.ml.nn.network import MLPClassifier
from repro.ml.nn.optimizers import Adam, Optimizer

__all__ = ["TrainingHistory", "train_classifier"]


@dataclass
class TrainingHistory:
    """Per-epoch record of a training run."""

    train_loss: list[float] = field(default_factory=list)
    val_loss: list[float] = field(default_factory=list)
    val_accuracy: list[float] = field(default_factory=list)
    stopped_early: bool = False
    best_epoch: int = -1

    @property
    def n_epochs(self) -> int:
        return len(self.train_loss)


def _validation_metrics(
    model: MLPClassifier, x: np.ndarray, y: np.ndarray
) -> tuple[float, float]:
    logits = model.network.forward(x, training=False)
    loss, _ = softmax_cross_entropy(logits, y)
    acc = float(np.mean(np.argmax(logits, axis=1) == y))
    return loss, acc


def train_classifier(
    model: MLPClassifier,
    x: np.ndarray,
    y: np.ndarray,
    epochs: int = 30,
    batch_size: int = 128,
    optimizer: Optimizer | None = None,
    validation_fraction: float = 0.15,
    patience: int = 8,
    seed: int | np.random.Generator | None = None,
) -> TrainingHistory:
    """Train ``model`` on ``(x, y)`` with Adam and early stopping.

    The paper holds out 15% of the training set for validation; we follow
    that default. The best-validation-loss weights are restored at the end,
    and training stops after ``patience`` epochs without improvement.

    Parameters
    ----------
    model:
        The classifier to train in place.
    x, y:
        Training features (n_samples, n_features) and integer labels.
    epochs:
        Maximum number of passes over the training split.
    batch_size:
        Minibatch size (clipped to the training-split size).
    optimizer:
        Any :class:`Optimizer`; defaults to Adam(1e-3).
    validation_fraction:
        Fraction held out for early stopping; 0 disables the split and
        early stopping.
    patience:
        Epochs without validation improvement before stopping.
    seed:
        Controls shuffling and the validation split.
    """
    x = as_2d_float(x)
    y = as_1d_int(y)
    if x.shape[0] != y.shape[0]:
        raise ShapeError(
            f"x has {x.shape[0]} rows but y has {y.shape[0]} labels"
        )
    if x.shape[1] != model.layer_sizes[0]:
        raise ShapeError(
            f"model expects {model.layer_sizes[0]} features, data has {x.shape[1]}"
        )
    if y.max() >= model.n_classes:
        raise ShapeError(
            f"label {y.max()} out of range for {model.n_classes} classes"
        )
    if epochs <= 0:
        raise ConfigurationError(f"epochs must be positive, got {epochs}")
    if not 0.0 <= validation_fraction < 1.0:
        raise ConfigurationError(
            f"validation_fraction must be in [0, 1), got {validation_fraction}"
        )

    rng = check_random_state(seed)
    optimizer = optimizer if optimizer is not None else Adam()
    optimizer.reset()

    n = x.shape[0]
    order = rng.permutation(n)
    n_val = int(round(n * validation_fraction))
    use_validation = 0 < n_val < n
    if use_validation:
        val_idx, train_idx = order[:n_val], order[n_val:]
    else:
        val_idx, train_idx = order[:0], order
    x_train, y_train = x[train_idx], y[train_idx]
    x_val, y_val = x[val_idx], y[val_idx]
    batch_size = max(1, min(batch_size, x_train.shape[0]))

    history = TrainingHistory()
    best_val = np.inf
    best_weights = model.network.get_weights()
    epochs_since_best = 0

    for epoch in range(epochs):
        perm = rng.permutation(x_train.shape[0])
        epoch_loss = 0.0
        n_batches = 0
        for start in range(0, x_train.shape[0], batch_size):
            idx = perm[start : start + batch_size]
            logits = model.network.forward(x_train[idx], training=True)
            loss, grad = softmax_cross_entropy(logits, y_train[idx])
            model.network.backward(grad)
            optimizer.step(model.network.parameters(), model.network.gradients())
            epoch_loss += loss
            n_batches += 1
        history.train_loss.append(epoch_loss / max(1, n_batches))

        if use_validation:
            val_loss, val_acc = _validation_metrics(model, x_val, y_val)
            history.val_loss.append(val_loss)
            history.val_accuracy.append(val_acc)
            if val_loss < best_val - 1e-9:
                best_val = val_loss
                best_weights = model.network.get_weights()
                history.best_epoch = epoch
                epochs_since_best = 0
            else:
                epochs_since_best += 1
                if epochs_since_best >= patience:
                    history.stopped_early = True
                    break

    if use_validation:
        model.network.set_weights(best_weights)
    else:
        history.best_epoch = epochs - 1
    model.mark_fitted()
    return history
