"""Tests for the FPGA models: quantization, resources, latency, power."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.fpga import (
    XCZU7EV,
    FixedPointFormat,
    HLSNetworkModel,
    estimate_network_resources,
    pipeline_latency_cycles,
    pipeline_latency_ns,
)
from repro.fpga.latency import readout_decision_latency_ns
from repro.fpga.power import estimate_design_power_mw, estimate_power_mw
from repro.fpga.resources import network_shape_stats
from repro.ml.nn import MLPClassifier, train_classifier

FNN = (1000, 500, 250, 243)
HERQULES = (30, 60, 120, 243)
OURS = (45, 22, 11, 3)


class TestFixedPoint:
    def test_resolution_and_range(self):
        fmt = FixedPointFormat(8, 3)
        assert fmt.fraction_bits == 5
        assert fmt.resolution == pytest.approx(1 / 32)
        assert fmt.max_value == pytest.approx(4.0 - 1 / 32)
        assert fmt.min_value == pytest.approx(-4.0)

    def test_quantize_saturates(self):
        fmt = FixedPointFormat(8, 3)
        out = fmt.quantize(np.array([100.0, -100.0]))
        assert out[0] == fmt.max_value
        assert out[1] == fmt.min_value

    def test_quantize_error_bounded(self, rng):
        fmt = FixedPointFormat(12, 4)
        values = rng.uniform(-7, 7, 200)
        err = fmt.quantization_error(values)
        assert np.max(np.abs(err)) <= fmt.resolution / 2 + 1e-12

    def test_covers(self):
        fmt = FixedPointFormat(8, 3)
        assert fmt.covers(np.array([1.0, -2.0]))
        assert not fmt.covers(np.array([10.0]))

    def test_invalid_format_rejected(self):
        with pytest.raises(ConfigurationError):
            FixedPointFormat(8, 9)

    @settings(max_examples=30, deadline=None)
    @given(
        total=st.integers(min_value=4, max_value=24),
        value=st.floats(min_value=-1e3, max_value=1e3),
    )
    def test_quantize_idempotent_property(self, total, value):
        fmt = FixedPointFormat(total, max(1, total // 2))
        once = fmt.quantize(np.array([value]))
        twice = fmt.quantize(once)
        np.testing.assert_array_equal(once, twice)


class TestResources:
    def test_parameter_counts_match_paper(self):
        assert network_shape_stats(FNN)[0] == 686_743
        assert network_shape_stats(HERQULES)[0] == 38_583
        assert network_shape_stats(OURS)[0] * 5 == 6_505

    def test_lut_calibration_points(self):
        # The model is solved through the paper's published utilizations.
        fnn = estimate_network_resources(FNN).utilization(XCZU7EV)["lut"]
        herq = estimate_network_resources(HERQULES).utilization(XCZU7EV)["lut"]
        ours = estimate_network_resources(OURS, n_replicas=5).utilization(
            XCZU7EV
        )["lut"]
        assert fnn == pytest.approx(4.20, abs=0.02)
        assert herq == pytest.approx(0.28, abs=0.01)
        assert ours == pytest.approx(0.07, abs=0.005)

    def test_published_ratios(self):
        fnn = estimate_network_resources(FNN)
        herq = estimate_network_resources(HERQULES)
        ours = estimate_network_resources(OURS, n_replicas=5)
        assert fnn.luts / ours.luts == pytest.approx(60, rel=0.05)
        assert herq.luts / ours.luts == pytest.approx(4, rel=0.05)
        assert herq.ffs / ours.ffs == pytest.approx(5, rel=0.05)

    def test_fnn_does_not_fit_but_ours_does(self):
        assert not estimate_network_resources(FNN).fits(XCZU7EV)
        assert estimate_network_resources(OURS, n_replicas=5).fits(XCZU7EV)

    def test_wider_precision_costs_more(self):
        narrow = estimate_network_resources(OURS, FixedPointFormat(8, 3))
        wide = estimate_network_resources(OURS, FixedPointFormat(16, 6))
        assert wide.luts > narrow.luts
        assert wide.brams >= narrow.brams

    def test_resource_addition(self):
        a = estimate_network_resources(OURS)
        total = a + a
        assert total.luts == pytest.approx(2 * a.luts)


class TestLatencyPower:
    def test_paper_latency_point(self):
        # 3 dense layers at reuse 1 -> 5 cycles -> 5 ns at 1 GHz.
        assert pipeline_latency_cycles(OURS) == 5
        assert pipeline_latency_ns(OURS, clock_ghz=1.0) == pytest.approx(5.0)

    def test_reuse_factor_serializes(self):
        assert pipeline_latency_cycles(OURS, reuse_factor=4) == 14

    def test_decision_latency_dominated_by_integration(self):
        total = readout_decision_latency_ns(800.0, OURS)
        assert 800.0 < total < 820.0

    def test_paper_power_point(self):
        assert estimate_design_power_mw(6505) == pytest.approx(1.561, abs=1e-3)

    def test_power_scales_with_rate(self):
        slow = estimate_power_mw(OURS, inference_rate_mhz=1.0)
        fast = estimate_power_mw(OURS, inference_rate_mhz=2.0)
        assert fast > slow

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            pipeline_latency_cycles(OURS, reuse_factor=0)
        with pytest.raises(ConfigurationError):
            estimate_design_power_mw(0)


class TestHLSModel:
    @pytest.fixture(scope="class")
    def trained(self):
        rng = np.random.default_rng(0)
        x = np.vstack(
            [rng.normal(c, 0.4, size=(150, 4)) for c in (-1.5, 0.0, 1.5)]
        )
        y = np.repeat([0, 1, 2], 150)
        model = MLPClassifier((4, 8, 3), seed=0)
        train_classifier(model, x, y, epochs=40, seed=0)
        return model, x, y

    def test_quantized_accuracy_close_to_float(self, trained):
        model, x, y = trained
        hls = HLSNetworkModel.from_classifier(model)
        float_acc = model.score(x, y)
        fixed_acc = float(np.mean(hls.predict(x) == y))
        assert fixed_acc > float_acc - 0.05

    def test_weights_are_quantized(self, trained):
        model, _, _ = trained
        fmt = FixedPointFormat(8, 3)
        hls = HLSNetworkModel.from_classifier(model, weight_format=fmt)
        for w in hls.weights:
            np.testing.assert_array_equal(w, fmt.quantize(w))

    def test_reports_deployment_metrics(self, trained):
        model, _, _ = trained
        hls = HLSNetworkModel.from_classifier(model)
        assert hls.latency_cycles == 4  # 2 dense layers + overhead
        assert hls.resources.luts > 0
        assert hls.power_mw() > 0
