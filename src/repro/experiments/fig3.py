"""Fig 3 — MTV clouds, calibration-free leakage clustering, error traces.

(a) MTV IQ scatter of two-level calibration shots; (b) the three spectral
clusters with the small one labeled "leaked"; (c) mean traces per qubit
state; (d) mean traces of excitation-error instances. Data series are
returned as arrays (this repo has no plotting dependency).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.api.registry import experiment
from repro.api.results import ExperimentResult
from repro.config import QUICK, Profile
from repro.data import generate_calibration_shots, generate_corpus
from repro.discriminators import detect_leakage_clusters
from repro.discriminators.error_traces import tag_error_traces
from repro.dsp.demod import demodulate
from repro.dsp.filters import boxcar_decimate
from repro.dsp.mtv import mtv_points
from repro.physics.device import default_five_qubit_chip

__all__ = ["Fig3Result", "run_fig3"]

#: The paper plots the leak-prone qubit; index 3 is our "Qubit 4".
DEFAULT_QUBIT = 3


@dataclass(frozen=True)
class Fig3Result(ExperimentResult):
    """Data series for the four panels.

    Attributes
    ----------
    mtv:
        (n_shots, 2) MTV points — panel (a).
    cluster_levels:
        Per-shot cluster assignment in {0, 1, 2} — panel (b).
    detection_precision, detection_recall:
        Leakage-detection quality against simulator ground truth.
    state_mean_traces:
        (3, n_bins) complex mean trace per prepared level — panel (c).
    excitation_mean_traces:
        {(source, target): (n_bins,) complex} mean traces of mined
        excitation-error instances — panel (d).
    """

    qubit: int
    mtv: np.ndarray
    cluster_levels: np.ndarray
    cluster_sizes: tuple[int, ...]
    detection_precision: float
    detection_recall: float
    state_mean_traces: np.ndarray
    excitation_mean_traces: dict

    def _measured(self) -> dict:
        # Scalars and summary stats only; the array panels (MTV scatter,
        # mean traces) stay on the result object for plotting callers.
        return {
            "qubit": self.qubit,
            "cluster_sizes": self.cluster_sizes,
            "detection_precision": self.detection_precision,
            "detection_recall": self.detection_recall,
            "n_excitation_trace_sets": sum(
                1 for t in self.excitation_mean_traces.values() if t is not None
            ),
        }

    def format_table(self) -> str:
        lines = [
            f"Fig 3: calibration-free leakage detection (qubit index {self.qubit})",
            f"cluster sizes (0/1/L): {self.cluster_sizes}",
            f"leak detection precision={self.detection_precision:.3f} "
            f"recall={self.detection_recall:.3f}",
            "excitation-error trace sets: "
            + ", ".join(
                f"{s}->{t} (n/a)" if traces is None else f"{s}->{t}"
                for (s, t), traces in self.excitation_mean_traces.items()
            ),
        ]
        return "\n".join(lines)


@experiment("fig3", tags=("calibration",), paper_ref="Fig. 3")
def run_fig3(profile: Profile = QUICK, qubit: int = DEFAULT_QUBIT) -> Fig3Result:
    """Cluster calibration shots and extract state/error mean traces."""
    chip = default_five_qubit_chip()
    calibration = generate_calibration_shots(
        chip, n_shots=profile.calibration_shots, seed=profile.seed + 70
    )
    detection = detect_leakage_clusters(
        calibration,
        qubit,
        max_points=profile.spectral_max_points,
        seed=profile.seed + 71,
    )

    # Panels (c)/(d) use the three-level corpus of the main experiments.
    corpus = generate_corpus(
        chip, shots_per_state=profile.shots_per_state, seed=profile.seed
    )
    times = corpus.chip.sample_times(corpus.trace_len)
    baseband = boxcar_decimate(
        demodulate(corpus.feedline, chip.qubits[qubit].if_frequency_ghz, times),
        5,
    )
    levels = corpus.qubit_labels(qubit)
    state_means = np.vstack(
        [baseband[levels == s].mean(axis=0) for s in range(3)]
    )

    points = mtv_points(baseband)
    masks = tag_error_traces(points, levels, 3)
    excitation = {}
    for pair in ((0, 1), (0, 2), (1, 2)):
        mask = masks[pair]
        excitation[pair] = (
            baseband[mask].mean(axis=0) if int(mask.sum()) >= 2 else None
        )

    return Fig3Result(
        qubit=qubit,
        mtv=detection.mtv,
        cluster_levels=detection.assigned_levels,
        cluster_sizes=tuple(int(c) for c in detection.cluster_sizes),
        detection_precision=detection.precision,
        detection_recall=detection.recall,
        state_mean_traces=state_means,
        excitation_mean_traces=excitation,
    )
