"""Command-line entry point: run any paper experiment from the shell.

Examples::

    repro list
    repro table4 --profile quick
    repro fig5b --profile full --seed 7
    repro all --profile quick
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.config import get_profile
from repro.experiments import EXPERIMENTS

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Efficient and Scalable Architectures for "
            "Multi-level Superconducting Qubit Readout' (DAC 2025)"
        ),
    )
    parser.add_argument(
        "experiment",
        help="experiment id (table1/table2/.../headline), 'all', or 'list'",
    )
    parser.add_argument(
        "--profile",
        default="quick",
        help="sizing profile: quick, full, or paper (default: quick)",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="override the profile's base seed"
    )
    return parser


def _run_one(name: str, profile) -> None:
    start = time.perf_counter()
    result = EXPERIMENTS[name](profile)
    elapsed = time.perf_counter() - start
    print(result.format_table())
    print(f"[{name} completed in {elapsed:.1f} s]\n")


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)

    if args.experiment == "list":
        print("available experiments:")
        for name in EXPERIMENTS:
            print(f"  {name}")
        return 0

    profile = get_profile(args.profile)
    if args.seed is not None:
        profile = profile.with_seed(args.seed)

    if args.experiment == "all":
        for name in EXPERIMENTS:
            _run_one(name, profile)
        return 0

    if args.experiment not in EXPERIMENTS:
        known = ", ".join(EXPERIMENTS)
        print(
            f"unknown experiment {args.experiment!r}; expected one of: {known}",
            file=sys.stderr,
        )
        return 2

    _run_one(args.experiment, profile)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
