"""n-qudit density-matrix state with gate/channel application."""

from __future__ import annotations

import numpy as np

from repro._util import check_random_state
from repro.exceptions import ConfigurationError, DataError, ShapeError
from repro.qudit.states import joint_rho

__all__ = ["DensityMatrix"]


class DensityMatrix:
    """Exact density-matrix simulation of ``n_qudits`` d-level systems.

    Qudit 0 is the most significant tensor factor, matching the basis
    conventions of :mod:`repro.data.basis`. Suitable for the small systems
    of the paper's gate-level studies (memory is ``d**(2n)`` complex).
    """

    def __init__(self, n_qudits: int, d: int = 3) -> None:
        if n_qudits < 1:
            raise ConfigurationError(f"n_qudits must be >= 1, got {n_qudits}")
        if d < 2:
            raise ConfigurationError(f"d must be >= 2, got {d}")
        if d**n_qudits > 4096:
            raise ConfigurationError(
                f"state space {d}^{n_qudits} too large for dense simulation"
            )
        self.n_qudits = n_qudits
        self.d = d
        self.dim = d**n_qudits
        self.rho = joint_rho([0] * n_qudits, d)

    @classmethod
    def from_levels(
        cls, levels: list[int] | tuple[int, ...], d: int = 3
    ) -> "DensityMatrix":
        """Initialize in a product basis state."""
        state = cls(len(levels), d)
        state.rho = joint_rho(list(levels), d)
        return state

    def _embed(self, op: np.ndarray, targets: tuple[int, ...]) -> np.ndarray:
        """Lift an operator on ``targets`` to the full Hilbert space."""
        k = len(targets)
        if op.shape != (self.d**k, self.d**k):
            raise ShapeError(
                f"operator shape {op.shape} does not match {k} qudit(s)"
            )
        if len(set(targets)) != k:
            raise ConfigurationError("duplicate target qudits")
        for t in targets:
            if not 0 <= t < self.n_qudits:
                raise ConfigurationError(
                    f"target {t} out of range [0, {self.n_qudits})"
                )
        n, d = self.n_qudits, self.d
        # Reshape to one axis per qudit (rows), apply op via tensordot on
        # the target axes, then move the contracted axes back in place.
        op_tensor = op.reshape((d,) * k + (d,) * k)
        full = np.eye(self.dim, dtype=complex).reshape((d,) * n + (self.dim,))
        moved = np.tensordot(op_tensor, full, axes=(range(k, 2 * k), targets))
        # tensordot puts the k output axes first; restore original order.
        order = list(targets)
        rest = [ax for ax in range(n) if ax not in targets]
        current = order + rest  # axis layout after tensordot
        perm = [current.index(ax) for ax in range(n)]
        moved = np.transpose(moved, perm + [n])
        return moved.reshape(self.dim, self.dim)

    def apply_unitary(self, gate: np.ndarray, targets: tuple[int, ...]) -> None:
        """Apply a unitary on the given qudits (in tensor order)."""
        full = self._embed(np.asarray(gate, dtype=complex), tuple(targets))
        self.rho = full @ self.rho @ full.conj().T

    def apply_kraus(
        self, kraus: list[np.ndarray], targets: tuple[int, ...]
    ) -> None:
        """Apply a Kraus channel on the given qudits."""
        targets = tuple(targets)
        embedded = [self._embed(np.asarray(op, dtype=complex), targets) for op in kraus]
        out = np.zeros_like(self.rho)
        for op in embedded:
            out += op @ self.rho @ op.conj().T
        self.rho = out

    def probabilities(self) -> np.ndarray:
        """Joint basis-state probabilities (diagonal of rho)."""
        probs = np.real(np.diag(self.rho)).copy()
        probs[probs < 0] = 0.0
        total = probs.sum()
        if total <= 0:
            raise DataError("state has zero trace")
        return probs / total

    def level_populations(self, qudit: int) -> np.ndarray:
        """Marginal level populations of one qudit."""
        if not 0 <= qudit < self.n_qudits:
            raise ConfigurationError(
                f"qudit must be in [0, {self.n_qudits})"
            )
        probs = self.probabilities().reshape((self.d,) * self.n_qudits)
        axes = tuple(ax for ax in range(self.n_qudits) if ax != qudit)
        return probs.sum(axis=axes)

    def leakage_population(self, qudit: int) -> float:
        """Probability of finding one qudit outside {|0>, |1>}."""
        return float(self.level_populations(qudit)[2:].sum())

    def sample_measurements(
        self, shots: int, rng: int | np.random.Generator | None = None
    ) -> np.ndarray:
        """Sample joint measurement outcomes; (shots, n_qudits) levels."""
        if shots < 1:
            raise ConfigurationError(f"shots must be >= 1, got {shots}")
        rng = check_random_state(rng)
        outcomes = rng.choice(self.dim, size=shots, p=self.probabilities())
        digits = np.empty((shots, self.n_qudits), dtype=np.int64)
        rem = outcomes
        for q in range(self.n_qudits - 1, -1, -1):
            digits[:, q] = rem % self.d
            rem = rem // self.d
        return digits

    @property
    def purity(self) -> float:
        """Tr(rho^2); 1 for pure states."""
        return float(np.real(np.trace(self.rho @ self.rho)))

    @property
    def trace(self) -> float:
        """Tr(rho); 1 for physical states."""
        return float(np.real(np.trace(self.rho)))
