"""Tests for the extension features: qutrit Toffoli, HMM baseline, scaling."""

import numpy as np
import pytest

from repro.config import QUICK
from repro.discriminators import HMMDiscriminator, MLRDiscriminator
from repro.exceptions import ConfigurationError, NotFittedError
from repro.experiments.scaling import (
    fnn_architecture,
    herqules_architecture,
    ours_architecture,
    run_scaling,
    total_parameters,
)
from repro.ml import stratified_split
from repro.ml.metrics import per_qubit_fidelity
from repro.qudit import (
    controlled_shift,
    qutrit_toffoli_circuit,
    toffoli_truth_table,
)
from repro.qudit.gates import x01
from repro.qudit.toffoli import two_qutrit_gate_count


class TestQutritToffoli:
    def test_truth_table_is_toffoli(self):
        table = toffoli_truth_table()
        for (a, b, t), out in table.items():
            assert out == (a, b, t ^ (a & b)), (a, b, t, out)

    def test_uses_three_two_qutrit_gates(self):
        circuit = qutrit_toffoli_circuit()
        assert two_qutrit_gate_count(circuit) == 3

    def test_controls_restored_to_computational_subspace(self):
        circuit = qutrit_toffoli_circuit()
        for levels in [(1, 1, 0), (1, 0, 1), (0, 1, 1)]:
            rho = circuit.run(levels)
            assert rho.leakage_population(0) == pytest.approx(0.0, abs=1e-12)
            assert rho.leakage_population(1) == pytest.approx(0.0, abs=1e-12)

    def test_intermediate_state_leaves_computational_subspace(self):
        """The defining property: mid-circuit, control B occupies |2>."""
        from repro.qudit import DensityMatrix
        from repro.qudit.gates import x12

        state = DensityMatrix.from_levels([1, 1, 0])
        state.apply_unitary(controlled_shift(1, x12()), (0, 1))
        assert state.leakage_population(1) == pytest.approx(1.0)

    def test_controlled_shift_is_unitary(self):
        gate = controlled_shift(2, x01())
        np.testing.assert_allclose(
            gate @ gate.conj().T, np.eye(9), atol=1e-12
        )

    def test_controlled_shift_validates_level(self):
        with pytest.raises(ConfigurationError):
            controlled_shift(5, x01())


class TestHMMDiscriminator:
    @pytest.fixture(scope="class")
    def fitted(self, tiny_corpus):
        train, test = stratified_split(tiny_corpus.labels, 0.5, seed=21)
        hmm = HMMDiscriminator(seed=22).fit(tiny_corpus, train)
        return hmm, train, test

    def test_reaches_high_fidelity(self, tiny_corpus, fitted):
        hmm, _, test = fitted
        pred = hmm.predict(tiny_corpus, test)
        fid = per_qubit_fidelity(tiny_corpus.labels[test], pred, 2, 3)
        assert np.all(fid > 0.8)

    def test_handles_mid_readout_relaxation(self, tiny_corpus, fitted):
        """Traces that relaxed mid-readout should mostly still be assigned
        their prepared level (the HMM models the jump)."""
        hmm, _, test = fitted
        levels = hmm.predict_qubit_levels(tiny_corpus, test)
        prepared = tiny_corpus.prepared_levels[test]
        final = tiny_corpus.final_levels[test]
        relaxed = (prepared[:, 0] == 1) & (final[:, 0] == 0)
        if relaxed.sum() >= 5:
            assert np.mean(levels[relaxed, 0] == 1) > 0.5

    def test_unfitted_raises(self, tiny_corpus):
        with pytest.raises(NotFittedError):
            HMMDiscriminator().predict(tiny_corpus)

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            HMMDiscriminator(decimation=0)
        with pytest.raises(ConfigurationError):
            HMMDiscriminator(rate_scale=-1.0)


class TestNeighborFeatureToggle:
    def test_own_qubit_heads_are_smaller(self, tiny_corpus):
        train, _ = stratified_split(tiny_corpus.labels, 0.5, seed=23)
        full = MLRDiscriminator(epochs=5, seed=24).fit(tiny_corpus, train)
        own = MLRDiscriminator(
            neighbor_features=False, epochs=5, seed=24
        ).fit(tiny_corpus, train)
        assert own.n_parameters < full.n_parameters

    def test_own_qubit_prediction_shapes(self, tiny_corpus):
        train, test = stratified_split(tiny_corpus.labels, 0.5, seed=25)
        own = MLRDiscriminator(
            neighbor_features=False, epochs=10, seed=26
        ).fit(tiny_corpus, train)
        levels = own.predict_qubit_levels(tiny_corpus, test[:20])
        assert levels.shape == (20, 2)
        probs = own.predict_proba_qubit(1, tiny_corpus, test[:20])
        assert probs.shape == (20, 3)


class TestScaling:
    def test_paper_operating_points(self):
        assert total_parameters("fnn", 5, 3) == 686_743
        assert total_parameters("herqules", 5, 3) == 38_583
        assert total_parameters("ours", 5, 3) == 6_505

    def test_architecture_rules(self):
        assert fnn_architecture(5, 3) == (1000, 500, 250, 243)
        assert herqules_architecture(5, 3) == (30, 60, 120, 243)
        assert ours_architecture(5, 3) == (45, 22, 11, 3)

    def test_joint_heads_grow_exponentially(self):
        result = run_scaling(QUICK)
        for design in ("fnn", "herqules"):
            tail = (
                result.parameters[design][(10, 3)]
                / result.parameters[design][(9, 3)]
            )
            assert tail > 2.5
        ours_tail = (
            result.parameters["ours"][(10, 3)]
            / result.parameters["ours"][(9, 3)]
        )
        assert ours_tail < 1.6

    def test_level_count_scaling(self):
        # OURS grows ~k^2 with level count while joint heads grow ~k^n, so
        # at n=10 moving from 3 to 4 levels costs the joint head (4/3)^10
        # ~ 18x but the modular design only ~4x.
        result = run_scaling(QUICK)
        ours_ratio = (
            result.parameters["ours"][(10, 4)]
            / result.parameters["ours"][(10, 3)]
        )
        herq_ratio = (
            result.parameters["herqules"][(10, 4)]
            / result.parameters["herqules"][(10, 3)]
        )
        assert ours_ratio < 5.0
        assert herq_ratio > 10.0

    def test_invalid_grid_rejected(self):
        with pytest.raises(ConfigurationError):
            total_parameters("fnn", 0, 3)
        with pytest.raises(ConfigurationError):
            total_parameters("magic", 5, 3)
