"""Bit-accurate emulation of the synthesized (quantized) network.

hls4ml converts a trained float network into a fixed-point datapath; the
deployed accuracy is the *quantized* accuracy. :class:`HLSNetworkModel`
reproduces that conversion: weights, biases, and activations are rounded
to configurable fixed-point formats, and inference runs layer by layer in
those formats (wide accumulator, quantization at each layer boundary —
hls4ml's default behavior).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError, ShapeError
from repro.fpga.fixed_point import FixedPointFormat
from repro.fpga.latency import pipeline_latency_cycles
from repro.fpga.power import estimate_power_mw
from repro.fpga.resources import ResourceEstimate, estimate_network_resources
from repro.ml.nn.network import MLPClassifier

__all__ = ["HLSNetworkModel"]


class HLSNetworkModel:
    """A fixed-point deployment of a trained :class:`MLPClassifier`.

    Parameters
    ----------
    weights, biases:
        Per-layer float arrays (taken from the trained model).
    weight_format, activation_format:
        Fixed-point formats for stored weights/biases and for the
        inter-layer activations. Defaults follow common hls4ml choices:
        8-bit weights, 16-bit activations.
    """

    def __init__(
        self,
        weights: list[np.ndarray],
        biases: list[np.ndarray],
        weight_format: FixedPointFormat | None = None,
        activation_format: FixedPointFormat | None = None,
    ) -> None:
        if len(weights) != len(biases) or not weights:
            raise ConfigurationError("need matching, non-empty weight/bias lists")
        self.weight_format = weight_format or FixedPointFormat(8, 3)
        self.activation_format = activation_format or FixedPointFormat(16, 8)
        self.weights = [self.weight_format.quantize(w) for w in weights]
        self.biases = [self.weight_format.quantize(b) for b in biases]
        self.layer_sizes = (weights[0].shape[0],) + tuple(
            w.shape[1] for w in weights
        )

    @classmethod
    def from_classifier(
        cls,
        model: MLPClassifier,
        weight_format: FixedPointFormat | None = None,
        activation_format: FixedPointFormat | None = None,
    ) -> "HLSNetworkModel":
        """Quantize a trained classifier for deployment."""
        weights, biases = [], []
        for layer in model.network.layers:
            weights.append(layer.weights.copy())
            biases.append(layer.bias.copy())
        return cls(weights, biases, weight_format, activation_format)

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Quantized logits for a batch (n_samples, n_in)."""
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.layer_sizes[0]:
            raise ShapeError(
                f"expected input (*, {self.layer_sizes[0]}), got {x.shape}"
            )
        act = self.activation_format.quantize(x)
        last = len(self.weights) - 1
        for i, (w, b) in enumerate(zip(self.weights, self.biases)):
            z = act @ w + b  # wide accumulator: full precision inside
            if i < last:
                z = np.maximum(z, 0.0)
            act = self.activation_format.quantize(z)
        return act

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Hard class decisions from the quantized datapath."""
        return np.argmax(self.forward(x), axis=1)

    @property
    def resources(self) -> ResourceEstimate:
        """Resource estimate at this model's weight precision."""
        return estimate_network_resources(
            self.layer_sizes, precision=self.weight_format
        )

    @property
    def latency_cycles(self) -> int:
        """Pipeline latency in clock cycles (reuse factor 1)."""
        return pipeline_latency_cycles(self.layer_sizes)

    def power_mw(self, inference_rate_mhz: float = 1.0) -> float:
        """Power at a given inference rate (one per readout by default)."""
        return estimate_power_mw(self.layer_sizes, inference_rate_mhz)
