"""Per-stage latency and throughput instrumentation for the runtime.

Every micro-batch that flows through the pipeline is timed stage by stage
(demod, matched filter, discriminate, sink); :class:`LatencyStats`
aggregates the samples into p50/p99 quantiles and the final
:class:`PipelineReport` scores the measured per-shot compute latency
against the FPGA decision budget of :mod:`repro.fpga.latency` — the
software runtime's honest distance from the paper's 5-cycle hardware
operating point.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro._util import json_finite
from repro.exceptions import ConfigurationError, DataError
from repro.experiments.report import format_rows
from repro.fpga.latency import CycleBudgetCheck

__all__ = ["LatencyStats", "StageTimings", "PipelineReport"]


#: Default per-stage sample window for percentile estimation. 4096
#: batches at the default dispatch size is hundreds of thousands of
#: shots — plenty for stable p50/p99 — while bounding a long-lived
#: serving session's footprint at a few tens of kilobytes per stage.
DEFAULT_LATENCY_WINDOW = 4096


class LatencyStats:
    """Streaming collection of per-batch latency samples (seconds).

    Totals (:attr:`count`, :attr:`total_seconds`, :attr:`total_shots`)
    are exact scalar accumulators over the whole stream; percentiles are
    estimated over a bounded sliding window of the most recent
    ``window`` samples. A serving session is open-ended, so appending
    every sample forever would grow memory linearly with uptime — and
    recent samples are also the honest basis for latency percentiles on
    a drifting machine.
    """

    def __init__(
        self, name: str = "stage", window: int = DEFAULT_LATENCY_WINDOW
    ) -> None:
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        self.name = name
        self.window = int(window)
        self._samples: deque[float] = deque(maxlen=self.window)
        self._count = 0
        self._total_seconds = 0.0
        self._total_shots = 0

    def record(self, seconds: float, n_shots: int = 1) -> None:
        """Add one batch's wall time and its shot count."""
        if seconds < 0:
            raise ConfigurationError("latency sample must be >= 0")
        if n_shots < 1:
            raise ConfigurationError("n_shots must be >= 1")
        self._samples.append(float(seconds))
        self._count += 1
        self._total_seconds += float(seconds)
        self._total_shots += int(n_shots)

    @property
    def count(self) -> int:
        return self._count

    @property
    def total_seconds(self) -> float:
        return self._total_seconds

    @property
    def total_shots(self) -> int:
        return self._total_shots

    @property
    def window_count(self) -> int:
        """Samples currently inside the percentile window."""
        return len(self._samples)

    def percentile(self, q: float) -> float:
        """Batch-latency percentile in seconds (q in [0, 100]).

        Computed over the bounded recent-sample window. With zero
        recorded samples this is NaN — an empty or stalled stage must
        read as "no data", never as 0 ms (which would make it look
        infinitely fast in reports).
        """
        if not self._samples:
            return float("nan")
        return float(np.percentile(np.asarray(self._samples), q))

    @property
    def p50_ms(self) -> float:
        return self.percentile(50.0) * 1e3

    @property
    def p99_ms(self) -> float:
        return self.percentile(99.0) * 1e3

    @property
    def mean_per_shot_us(self) -> float:
        """Mean compute time per shot in microseconds (NaN if empty)."""
        shots = self.total_shots
        if shots == 0:
            return float("nan")
        return self.total_seconds / shots * 1e6

    def summary(self) -> dict:
        """JSON-able digest of this stage's timing distribution.

        Percentiles over an empty stage are NaN (see :meth:`percentile`);
        :func:`json_finite` maps them to ``None`` so the digest stays
        strict-JSON serializable.
        """
        return {
            "batches": self.count,
            "p50_ms": json_finite(self.p50_ms),
            "p99_ms": json_finite(self.p99_ms),
            "mean_per_shot_us": json_finite(self.mean_per_shot_us),
            "total_seconds": self.total_seconds,
        }


#: Canonical stage order in reports.
STAGE_ORDER = ("demod", "matched_filter", "discriminate", "sink")


class StageTimings:
    """One :class:`LatencyStats` per pipeline stage."""

    def __init__(self) -> None:
        self.stages: dict[str, LatencyStats] = {}

    def record(self, stage: str, seconds: float, n_shots: int) -> None:
        if stage not in self.stages:
            self.stages[stage] = LatencyStats(stage)
        self.stages[stage].record(seconds, n_shots)

    def __getitem__(self, stage: str) -> LatencyStats:
        return self.stages[stage]

    def __contains__(self, stage: str) -> bool:
        return stage in self.stages

    def ordered(self) -> list[LatencyStats]:
        known = [self.stages[s] for s in STAGE_ORDER if s in self.stages]
        extra = [
            stats
            for name, stats in self.stages.items()
            if name not in STAGE_ORDER
        ]
        return known + extra

    def compute_per_shot_us(self) -> float:
        """Mean per-shot compute latency over all non-sink stages."""
        stats = [s for s in self.ordered() if s.name != "sink"]
        if not stats:
            raise DataError("no stage timings recorded")
        return float(sum(s.mean_per_shot_us for s in stats))


@dataclass
class PipelineReport:
    """End-of-run digest: throughput, stage latencies, budget, sink."""

    n_shots: int
    n_batches: int
    wall_seconds: float
    shots_per_second: float
    stage_summaries: dict[str, dict]
    budget: CycleBudgetCheck | None = None
    sink_summary: dict = field(default_factory=dict)
    accuracy: float | None = None
    calibration_cached: bool | None = None
    assignment_counts: list[int] | None = None
    details: dict = field(default_factory=dict)
    drift_score: float | None = None
    drift_alarm: bool | None = None

    def to_dict(self) -> dict:
        """JSON-serializable form (for ``--json`` benchmark output)."""
        out = {
            "n_shots": self.n_shots,
            "n_batches": self.n_batches,
            "wall_seconds": self.wall_seconds,
            "shots_per_second": self.shots_per_second,
            "stages": self.stage_summaries,
            "sink": self.sink_summary,
            "accuracy": self.accuracy,
            "calibration_cached": self.calibration_cached,
            "assignment_counts": self.assignment_counts,
            "details": self.details,
            "drift_score": self.drift_score,
            "drift_alarm": self.drift_alarm,
        }
        if self.budget is not None:
            out["budget"] = self.budget.to_dict()
        return out

    def format_table(self) -> str:
        """Aligned text report in the house experiment style."""

        def cell(value):
            # An empty stage reports no-data latencies (None in the JSON
            # digest, NaN at the property level); render "-" rather than
            # a numeric 0 that would read as a real measurement.
            if value is None or (isinstance(value, float) and np.isnan(value)):
                return "-"
            return value

        rows = [
            [
                name,
                summary["batches"],
                cell(summary["p50_ms"]),
                cell(summary["p99_ms"]),
                cell(summary["mean_per_shot_us"]),
            ]
            for name, summary in self.stage_summaries.items()
        ]
        table = format_rows(
            ["stage", "batches", "p50 ms", "p99 ms", "us/shot"],
            rows,
            title="streaming readout pipeline",
        )
        lines = [
            table,
            "",
            f"shots                {self.n_shots} in {self.n_batches} batches",
            f"throughput           {self.shots_per_second:.0f} shots/s "
            f"({self.wall_seconds:.2f} s wall)",
        ]
        if self.accuracy is not None:
            lines.append(f"joint-state accuracy {self.accuracy:.4f}")
        if self.drift_score is not None:
            state = "ALARM" if self.drift_alarm else "ok"
            lines.append(
                f"drift                score {self.drift_score:.4f} ({state})"
            )
        if self.calibration_cached is not None:
            state = "warm (loaded)" if self.calibration_cached else "cold (fitted)"
            lines.append(f"calibration          {state}")
        if self.budget is not None:
            lines.append(
                f"fpga budget          {self.budget.budget_ns:.0f} ns/shot vs "
                f"measured {self.budget.measured_ns:.0f} ns/shot "
                f"({self.budget.slowdown:.0f}x slowdown)"
            )
        if self.sink_summary:
            lines.append(
                "sink                 "
                + ", ".join(
                    f"{k}={v}" for k, v in self.sink_summary.items()
                    if not isinstance(v, (list, dict))
                )
            )
        return "\n".join(lines)
