"""Fig 5(b) — mean readout accuracy vs readout duration.

Paper: accuracy is nearly flat from 1000 ns down to ~800 ns and degrades
below, enabling a 200 ns (20%) readout-time reduction at negligible cost —
"without requiring additional training" (matched-filter kernels are simply
truncated). Both the retrained and truncated-only variants are measured.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.api.registry import experiment
from repro.api.results import ExperimentResult
from repro.config import QUICK, Profile
from repro.discriminators import MLRDiscriminator
from repro.experiments.common import NN_LEARNING_RATE, get_readout_bundle
from repro.experiments.report import format_rows
from repro.ml.metrics import geometric_mean_fidelity, per_qubit_fidelity

__all__ = ["Fig5bResult", "run_fig5b"]

DEFAULT_DURATIONS_NS = (500, 600, 700, 800, 900, 1000)


@dataclass(frozen=True)
class Fig5bResult(ExperimentResult):
    """Accuracy-vs-duration series.

    ``mean_accuracy`` retrains the whole pipeline per duration;
    ``truncated_accuracy`` only truncates the full-length kernels (the
    paper's no-retraining mode, evaluated with the full-length model).
    """

    durations_ns: tuple[int, ...]
    mean_accuracy: tuple[float, ...]
    truncated_accuracy: tuple[float, ...]

    def accuracy_at(self, duration_ns: int) -> float:
        """Retrained mean accuracy at one duration."""
        return self.mean_accuracy[self.durations_ns.index(duration_ns)]

    def format_table(self) -> str:
        rows = [
            (d, a, t)
            for d, a, t in zip(
                self.durations_ns, self.mean_accuracy, self.truncated_accuracy
            )
        ]
        return format_rows(
            ("Duration(ns)", "MeanAcc(retrained)", "MeanAcc(truncated)"),
            rows,
            title="Fig 5(b): mean accuracy vs readout duration",
        )


@experiment("fig5b", tags=("fidelity", "timing"), paper_ref="Fig. 5(b)")
def run_fig5b(
    profile: Profile = QUICK,
    durations_ns: tuple[int, ...] = DEFAULT_DURATIONS_NS,
) -> Fig5bResult:
    """Sweep the readout window and measure mean per-qubit accuracy."""
    bundle = get_readout_bundle(profile)
    corpus = bundle.corpus
    dt = corpus.chip.dt_ns

    # Reference model fitted at full length, reused for the truncated mode.
    full_model = MLRDiscriminator(
        epochs=profile.nn_epochs,
        batch_size=profile.batch_size,
        learning_rate=NN_LEARNING_RATE,
        seed=profile.seed + 80,
    )
    full_model.fit(corpus, bundle.train_idx)

    retrained, truncated = [], []
    for duration in durations_ns:
        trace_len = int(round(duration / dt))
        short = corpus.truncated(trace_len)

        model = MLRDiscriminator(
            epochs=profile.nn_epochs,
            batch_size=profile.batch_size,
            learning_rate=NN_LEARNING_RATE,
            seed=profile.seed + 81,
        )
        model.fit(short, bundle.train_idx)
        pred = model.predict(short, bundle.test_idx)
        fid = per_qubit_fidelity(
            bundle.test_labels, pred, corpus.n_qubits, corpus.n_levels
        )
        retrained.append(float(np.mean(fid)))

        recalibrated = full_model.with_recalibrated_scaler(
            short, bundle.train_idx
        )
        pred_trunc = recalibrated.predict(short, bundle.test_idx)
        fid_trunc = per_qubit_fidelity(
            bundle.test_labels, pred_trunc, corpus.n_qubits, corpus.n_levels
        )
        truncated.append(float(np.mean(fid_trunc)))

    return Fig5bResult(
        durations_ns=tuple(durations_ns),
        mean_accuracy=tuple(retrained),
        truncated_accuracy=tuple(truncated),
    )
