"""Tests for the streaming readout runtime (repro.pipeline)."""

from __future__ import annotations

import math
import os
import threading
import time

import numpy as np
import pytest

from repro.config import Profile
from repro.data import generate_corpus
from repro.discriminators import MLRDiscriminator
from repro.exceptions import ConfigurationError, DataError, NotFittedError
from repro.fpga.latency import check_cycle_budget, decision_budget_ns
from repro.ml import stratified_split
from repro.pipeline import (
    BatchDiscriminationEngine,
    CalibrationKey,
    CalibrationRegistry,
    CollectingSink,
    CorpusTraceSource,
    EraserSpeculationSink,
    LatencyStats,
    MicroBatcher,
    PipelineConfig,
    QueueingSink,
    ReadoutPipeline,
    ResultSink,
    ShotChunk,
    SimulatorTraceSource,
    run_streaming_pipeline,
)
from repro.qec.eraser import EraserConfig, LevelStreamSpeculator


def tiny_profile(**overrides) -> Profile:
    """A fast sizing profile for pipeline tests (not a named CLI profile)."""
    params = dict(
        name="tiny",
        shots_per_state=10,
        calibration_shots=100,
        nn_epochs=8,
        fnn_epochs=2,
        batch_size=64,
        qec_shots=10,
        qudit_shots=10,
        spectral_max_points=100,
        seed=501,
    )
    params.update(overrides)
    return Profile(**params)


@pytest.fixture(scope="module")
def pipeline_mlr(tiny_corpus):
    train, _ = stratified_split(tiny_corpus.labels, 0.5, seed=21)
    return MLRDiscriminator(epochs=10, learning_rate=3e-3, seed=22).fit(
        tiny_corpus, train
    )


class TestSources:
    def test_simulator_source_streams_exact_total(self, two_qubit_chip):
        source = SimulatorTraceSource(two_qubit_chip, n_shots=50, chunk_size=16, seed=1)
        chunks = list(source.chunks())
        assert [c.n_shots for c in chunks] == [16, 16, 16, 2]
        assert [c.chunk_id for c in chunks] == [0, 1, 2, 3]
        assert all(c.feedline.shape[1] == two_qubit_chip.trace_len for c in chunks)

    def test_simulator_source_is_seeded(self, two_qubit_chip):
        a = next(SimulatorTraceSource(two_qubit_chip, 8, seed=3).chunks())
        b = next(SimulatorTraceSource(two_qubit_chip, 8, seed=3).chunks())
        assert np.array_equal(a.feedline, b.feedline)
        assert np.array_equal(a.prepared_levels, b.prepared_levels)

    def test_simulator_source_restricted_states(self, two_qubit_chip):
        computational = np.array([0, 1, 3, 4])  # digits < 2 in base 3
        source = SimulatorTraceSource(
            two_qubit_chip, 30, chunk_size=30, states=computational, seed=4
        )
        chunk = next(source.chunks())
        labels = chunk.joint_labels(two_qubit_chip.n_levels)
        assert set(np.unique(labels)) <= set(computational.tolist())

    def test_simulator_source_rejects_bad_states(self, two_qubit_chip):
        with pytest.raises(ConfigurationError):
            SimulatorTraceSource(two_qubit_chip, 10, states=np.array([99]))

    def test_corpus_source_replays_in_order(self, tiny_corpus):
        source = CorpusTraceSource(tiny_corpus, chunk_size=70)
        feed = np.concatenate([c.feedline for c in source.chunks()], axis=0)
        assert np.array_equal(feed, tiny_corpus.feedline)

    def test_corpus_source_shuffle_preserves_multiset(self, tiny_corpus):
        source = CorpusTraceSource(tiny_corpus, chunk_size=64, shuffle=True, seed=5)
        labels = np.concatenate(
            [c.joint_labels(tiny_corpus.n_levels) for c in source.chunks()]
        )
        assert sorted(labels.tolist()) == sorted(tiny_corpus.labels.tolist())

    def test_shot_chunk_validates_shapes(self):
        with pytest.raises(ValueError):
            ShotChunk(np.zeros(4, dtype=complex), None, 0)
        with pytest.raises(ValueError):
            ShotChunk(
                np.zeros((4, 8), dtype=complex),
                np.zeros((3, 2), dtype=np.int8),
                0,
            )


class TestMicroBatcher:
    def _chunks(self, sizes, n_qubits=2, trace_len=6, labels=True):
        out = []
        offset = 0
        for i, size in enumerate(sizes):
            feed = (np.arange(offset, offset + size)[:, None]) * np.ones(
                (1, trace_len)
            )
            levels = (
                np.full((size, n_qubits), i, dtype=np.int8) if labels else None
            )
            out.append(ShotChunk(feed.astype(complex), levels, i))
            offset += size
        return out

    def test_rebatches_to_uniform_sizes(self):
        batches = list(MicroBatcher(10).rebatch(self._chunks([7, 7, 7, 7])))
        assert [b.n_shots for b in batches] == [10, 10, 8]
        assert [b.chunk_id for b in batches] == [0, 1, 2]
        feed = np.concatenate([b.feedline for b in batches], axis=0)
        assert np.array_equal(feed[:, 0], np.arange(28, dtype=complex))

    def test_splits_oversized_chunks(self):
        batches = list(MicroBatcher(4).rebatch(self._chunks([11])))
        assert [b.n_shots for b in batches] == [4, 4, 3]

    def test_carries_labels_through(self):
        batches = list(MicroBatcher(5).rebatch(self._chunks([3, 4])))
        levels = np.concatenate([b.prepared_levels for b in batches], axis=0)
        assert levels[:, 0].tolist() == [0, 0, 0, 1, 1, 1, 1]

    def test_drops_labels_when_any_contributing_chunk_lacks_them(self):
        chunks = self._chunks([3]) + self._chunks([3], labels=False)
        batches = list(MicroBatcher(6).rebatch(chunks))
        assert batches[0].prepared_levels is None

    def test_labels_resume_after_unlabeled_shots_flush(self):
        chunks = self._chunks([4], labels=False) + self._chunks([4])
        batches = list(MicroBatcher(4).rebatch(chunks))
        assert batches[0].prepared_levels is None
        assert batches[1].prepared_levels is not None

    def test_rejects_bad_batch_size(self):
        with pytest.raises(ConfigurationError):
            MicroBatcher(0)


class TestLatencyStats:
    def test_percentiles(self):
        stats = LatencyStats("demo")
        for v in [0.001, 0.002, 0.003, 0.100]:
            stats.record(v, n_shots=10)
        assert stats.p50_ms == pytest.approx(2.5)
        assert stats.p99_ms > stats.p50_ms
        assert stats.mean_per_shot_us == pytest.approx(106.0 / 40 * 1e3)

    def test_empty_stats_report_nan_not_zero(self):
        # Regression: an empty stage used to be reportable as 0.0 ms,
        # which made a stalled/empty stage look infinitely fast. NaN is
        # the honest "no data" answer (rendered as "-" in tables); the
        # JSON summary maps it to None (strict JSON has no NaN literal).
        stats = LatencyStats("empty")
        assert math.isnan(stats.percentile(50))
        assert math.isnan(stats.p50_ms)
        assert math.isnan(stats.p99_ms)
        assert math.isnan(stats.mean_per_shot_us)
        summary = stats.summary()
        assert summary["batches"] == 0
        assert summary["p50_ms"] is None
        assert summary["p99_ms"] is None
        assert summary["mean_per_shot_us"] is None

    def test_empty_stage_renders_dash_in_table(self):
        from repro.pipeline.metrics import PipelineReport

        report = PipelineReport(
            n_shots=0,
            n_batches=0,
            wall_seconds=0.0,
            shots_per_second=0.0,
            stage_summaries={"demod": LatencyStats("demod").summary()},
        )
        row = [
            line for line in report.format_table().splitlines()
            if line.startswith("demod")
        ][0]
        assert "-" in row
        assert "nan" not in row

    def test_rejects_bad_samples(self):
        with pytest.raises(ConfigurationError):
            LatencyStats().record(-1.0)
        with pytest.raises(ConfigurationError):
            LatencyStats().record(1.0, n_shots=0)


class TestBudgetCheck:
    def test_paper_operating_point_budget(self):
        # 3-layer OURS head: 5-cycle NN + 3-cycle filter flush at 1 GHz.
        assert decision_budget_ns((45, 22, 11, 3)) == pytest.approx(8.0)

    def test_slowdown_and_within_budget(self):
        check = check_cycle_budget(16.0, (45, 22, 11, 3))
        assert check.slowdown == pytest.approx(2.0)
        assert not check.within_budget
        assert check_cycle_budget(4.0, (45, 22, 11, 3)).within_budget


class TestCalibrationRegistry:
    def test_key_rejects_unsafe_slugs(self):
        with pytest.raises(ConfigurationError):
            CalibrationKey(device="../escape")
        with pytest.raises(ConfigurationError):
            CalibrationKey(device="dev", profile="")

    def test_save_load_contains_invalidate(self, tmp_path, pipeline_mlr, tiny_corpus):
        registry = CalibrationRegistry(tmp_path)
        key = CalibrationKey("chip-a", "all", "tiny")
        assert key not in registry
        registry.save(key, pipeline_mlr)
        assert key in registry
        assert list(registry.keys()) == [key]
        loaded = registry.load(key)
        assert np.array_equal(
            loaded.predict(tiny_corpus), pipeline_mlr.predict(tiny_corpus)
        )
        assert registry.invalidate(key)
        assert key not in registry
        assert not registry.invalidate(key)

    def test_load_missing_key_raises(self, tmp_path):
        with pytest.raises(DataError):
            CalibrationRegistry(tmp_path).load(CalibrationKey("chip-a"))

    def test_get_or_fit_recovers_from_corrupt_artifact(
        self, tmp_path, tiny_corpus
    ):
        registry = CalibrationRegistry(tmp_path)
        key = CalibrationKey("chip-a", "all", "tiny")
        path = registry.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"truncated by a crash")
        disc, cached = registry.get_or_fit(
            key, lambda: MLRDiscriminator(epochs=4, seed=9), tiny_corpus
        )
        # The poisoned file is a cache miss: refit, re-store, serve.
        assert cached is False
        assert np.array_equal(
            registry.load(key).predict(tiny_corpus), disc.predict(tiny_corpus)
        )

    def test_keys_skips_foreign_files(self, tmp_path, pipeline_mlr):
        registry = CalibrationRegistry(tmp_path)
        key = CalibrationKey("chip-a", "all", "tiny")
        registry.save(key, pipeline_mlr)
        foreign = tmp_path / "my device" / "quick"
        foreign.mkdir(parents=True)
        (foreign / "all.npz").write_bytes(b"junk")
        assert list(registry.keys()) == [key]

    def test_get_or_fit_fits_exactly_once(self, tmp_path, tiny_corpus):
        registry = CalibrationRegistry(tmp_path)
        key = CalibrationKey("chip-a", "all", "tiny")
        fits = []

        def factory():
            disc = MLRDiscriminator(epochs=4, seed=9)
            original = disc.fit

            def counting_fit(corpus, indices):
                fits.append(1)
                return original(corpus, indices)

            disc.fit = counting_fit
            return disc

        first, cached_first = registry.get_or_fit(key, factory, tiny_corpus)
        second, cached_second = registry.get_or_fit(key, factory, tiny_corpus)
        assert (cached_first, cached_second) == (False, True)
        assert len(fits) == 1
        assert np.array_equal(
            first.predict(tiny_corpus), second.predict(tiny_corpus)
        )

    def test_memory_cache_deserializes_once(
        self, tmp_path, tiny_corpus, monkeypatch
    ):
        from repro.discriminators.base import Discriminator

        loads = []
        original = Discriminator.load_artifacts.__func__

        def counting_load(cls, path):
            loads.append(1)
            return original(cls, path)

        monkeypatch.setattr(
            Discriminator, "load_artifacts", classmethod(counting_load)
        )
        registry = CalibrationRegistry(tmp_path)
        key = CalibrationKey("chip-mem", "all", "tiny")
        fitted, _ = registry.get_or_fit(
            key, lambda: MLRDiscriminator(epochs=4, seed=9), tiny_corpus
        )
        # Fresh process-local state: force the first serve off disk.
        from repro.pipeline.registry import _cache_evict

        _cache_evict(registry.root, key)
        served_a, cached_a = registry.get_or_fit(
            key, lambda: MLRDiscriminator(epochs=4, seed=9), tiny_corpus
        )
        served_b, cached_b = registry.get_or_fit(
            key, lambda: MLRDiscriminator(epochs=4, seed=9), tiny_corpus
        )
        assert (cached_a, cached_b) == (True, True)
        assert len(loads) == 1, "second warm hit must come from memory"
        assert served_b is served_a

    def test_memory_cache_detects_out_of_band_rewrites(
        self, tmp_path, tiny_corpus
    ):
        # Another process rewriting the artifact file (no in-process
        # eviction hook runs) must invalidate the memoized copy: the
        # (mtime_ns, size) fingerprint check catches it.
        registry = CalibrationRegistry(tmp_path)
        key = CalibrationKey("chip-mem3", "all", "tiny")
        first, _ = registry.get_or_fit(
            key, lambda: MLRDiscriminator(epochs=4, seed=9), tiny_corpus
        )
        path = registry.path_for(key)
        train = np.arange(tiny_corpus.n_traces)
        other = MLRDiscriminator(epochs=8, seed=77).fit(tiny_corpus, train)
        other.save_artifacts(path)  # out-of-band overwrite
        os.utime(path, ns=(path.stat().st_atime_ns, path.stat().st_mtime_ns + 10**6))
        served, cached = registry.get_or_fit(
            key, lambda: MLRDiscriminator(epochs=4, seed=9), tiny_corpus
        )
        assert cached is True
        assert served is not first
        assert np.array_equal(
            served.predict(tiny_corpus), other.predict(tiny_corpus)
        )

    def test_memory_cache_never_serves_deleted_artifacts(
        self, tmp_path, tiny_corpus
    ):
        registry = CalibrationRegistry(tmp_path)
        key = CalibrationKey("chip-mem2", "all", "tiny")
        fits = []

        def factory():
            disc = MLRDiscriminator(epochs=4, seed=9)
            original = disc.fit

            def counting_fit(corpus, indices):
                fits.append(1)
                return original(corpus, indices)

            disc.fit = counting_fit
            return disc

        registry.get_or_fit(key, factory, tiny_corpus)
        registry.get_or_fit(key, factory, tiny_corpus)  # memory hit
        assert len(fits) == 1
        # Disk stays the source of truth: after a prune, the memoized
        # object must not mask the eviction.
        registry.prune(max_bytes=0)
        _, cached = registry.get_or_fit(key, factory, tiny_corpus)
        assert cached is False
        assert len(fits) == 2


class TestRegistryPrune:
    @staticmethod
    def _populated(tmp_path, pipeline_mlr, profiles=("p1", "p2", "p3")):
        registry = CalibrationRegistry(tmp_path)
        keys = [CalibrationKey("chip-a", "all", p) for p in profiles]
        for i, key in enumerate(keys):
            path = registry.save(key, pipeline_mlr)
            os.utime(path, (1000.0 + i, 1000.0 + i))  # distinct mtimes
        return registry, keys

    def test_no_bounds_is_a_noop(self, tmp_path, pipeline_mlr):
        registry, keys = self._populated(tmp_path, pipeline_mlr)
        report = registry.prune()
        assert report.removed == ()
        assert report.n_remaining == len(keys)
        assert report.bytes_remaining > 0
        assert set(registry.keys()) == set(keys)

    def test_age_eviction_removes_old_artifacts(self, tmp_path, pipeline_mlr):
        registry, keys = self._populated(tmp_path, pipeline_mlr)
        # At now=1101.5, ages are 101.5/100.5/99.5 s: two exceed 100 s.
        report = registry.prune(max_age_s=100.0, now=1101.5)
        assert set(report.removed) == set(keys[:2])
        assert report.bytes_freed > 0
        assert set(registry.keys()) == {keys[2]}

    def test_age_zero_clears_everything(self, tmp_path, pipeline_mlr):
        registry, keys = self._populated(tmp_path, pipeline_mlr)
        report = registry.prune(max_age_s=0.0)
        assert set(report.removed) == set(keys)
        assert report.n_remaining == 0
        assert list(registry.keys()) == []
        # Emptied device/profile directories are cleaned up too.
        assert list(registry.root.iterdir()) == []

    def test_size_eviction_drops_oldest_first(self, tmp_path, pipeline_mlr):
        registry, keys = self._populated(tmp_path, pipeline_mlr)
        sizes = [registry.path_for(k).stat().st_size for k in keys]
        # Budget for exactly the newest two artifacts.
        report = registry.prune(max_bytes=sizes[1] + sizes[2])
        assert report.removed == (keys[0],)
        assert set(registry.keys()) == set(keys[1:])
        assert report.bytes_remaining <= sizes[1] + sizes[2]

    def test_size_zero_clears_everything(self, tmp_path, pipeline_mlr):
        registry, keys = self._populated(tmp_path, pipeline_mlr)
        report = registry.prune(max_bytes=0)
        assert set(report.removed) == set(keys)
        assert report.bytes_remaining == 0

    def test_age_and_size_compose(self, tmp_path, pipeline_mlr):
        registry, keys = self._populated(tmp_path, pipeline_mlr)
        size = registry.path_for(keys[2]).stat().st_size
        report = registry.prune(max_age_s=100.0, max_bytes=size, now=1101.5)
        # Age pass removes the two oldest, size pass fits the rest.
        assert set(report.removed) == set(keys[:2])
        assert set(registry.keys()) == {keys[2]}

    def test_rejects_negative_bounds(self, tmp_path):
        registry = CalibrationRegistry(tmp_path)
        with pytest.raises(ConfigurationError):
            registry.prune(max_age_s=-1.0)
        with pytest.raises(ConfigurationError):
            registry.prune(max_bytes=-1)

    def test_report_format_lists_removed_keys(self, tmp_path, pipeline_mlr):
        registry, keys = self._populated(tmp_path, pipeline_mlr, ("p1",))
        report = registry.prune(max_age_s=0.0)
        text = report.format_table()
        assert "removed 1 artifact(s)" in text
        assert "chip-a/p1/all" in text


class TestDesignSelection:
    def test_non_default_design_gets_its_own_registry_key(self):
        from repro.pipeline.runner import _profile_slug

        profile = tiny_profile()
        assert _profile_slug(profile) == "tiny-s501"
        assert _profile_slug(profile, "ours") == "tiny-s501"
        # A different design can never collide with the default's artifact.
        assert _profile_slug(profile, "fnn") == "fnn.tiny-s501"

    def test_streaming_rejects_non_mlr_design(self):
        with pytest.raises(ConfigurationError, match="cannot stream"):
            run_streaming_pipeline(tiny_profile(), n_shots=10, design="fnn")

    def test_streaming_rejects_unknown_design(self):
        with pytest.raises(ConfigurationError, match="unknown discriminator"):
            run_streaming_pipeline(tiny_profile(), n_shots=10, design="nope")


class TestDiscriminationEngine:
    def test_streaming_matches_offline_predict(self, tiny_corpus, pipeline_mlr):
        engine = BatchDiscriminationEngine(pipeline_mlr, tiny_corpus.chip)
        result = engine.process(tiny_corpus.feedline)
        assert np.array_equal(result.joint, pipeline_mlr.predict(tiny_corpus))
        assert np.array_equal(
            result.levels, pipeline_mlr.predict_qubit_levels(tiny_corpus)
        )
        assert set(result.stage_seconds) == {
            "demod",
            "matched_filter",
            "discriminate",
        }

    def test_sharded_execution_matches_inline(self, tiny_corpus, pipeline_mlr):
        from concurrent.futures import ThreadPoolExecutor

        inline = BatchDiscriminationEngine(pipeline_mlr, tiny_corpus.chip)
        with ThreadPoolExecutor(max_workers=2) as pool:
            sharded = BatchDiscriminationEngine(
                pipeline_mlr, tiny_corpus.chip, executor=pool
            )
            a = inline.process(tiny_corpus.feedline[:40])
            b = sharded.process(tiny_corpus.feedline[:40])
        assert np.array_equal(a.joint, b.joint)

    def test_requires_fitted_discriminator(self, two_qubit_chip):
        with pytest.raises(NotFittedError):
            BatchDiscriminationEngine(MLRDiscriminator(), two_qubit_chip)

    def test_rejects_mismatched_chip(self, pipeline_mlr, five_qubit_chip):
        with pytest.raises(DataError):
            BatchDiscriminationEngine(pipeline_mlr, five_qubit_chip)


class TestLevelStreamSpeculator:
    def test_repeated_leakage_evidence_triggers_flag(self):
        spec = LevelStreamSpeculator(
            2, EraserConfig(window=3, activity_threshold=1, direct_evidence_cycles=2)
        )
        levels = np.array([[2, 0], [2, 0], [0, 0], [2, 1]])
        flags = spec.update(levels)
        # Qubit 0 leaks twice in the window -> flag on the second read;
        # the flag clears its evidence so the fourth read alone cannot fire.
        assert flags[:, 0].tolist() == [False, True, False, False]
        assert not flags[:, 1].any()
        assert spec.total_flags == 1
        assert spec.summary()["shots_seen"] == 4

    def test_window_expires_old_evidence(self):
        spec = LevelStreamSpeculator(
            1, EraserConfig(window=2, activity_threshold=1, direct_evidence_cycles=2)
        )
        flags = spec.update(np.array([[2], [0], [2], [0]]))
        assert not flags.any()

    def test_rejects_bad_shapes(self):
        spec = LevelStreamSpeculator(2)
        with pytest.raises(ConfigurationError):
            spec.update(np.zeros((4, 3), dtype=int))


class _SlowSink(ResultSink):
    def __init__(self, delay_s=0.02):
        self.delay_s = delay_s
        self.batches = []

    def consume(self, levels, joint, batch_id):
        time.sleep(self.delay_s)
        self.batches.append(batch_id)

    def close(self):
        return {"batches": len(self.batches)}


class _FailingSink(ResultSink):
    def consume(self, levels, joint, batch_id):
        raise RuntimeError("downstream exploded")


class TestSinks:
    def test_collecting_sink_accumulates(self):
        sink = CollectingSink()
        sink.consume(np.zeros((3, 2), int), np.zeros(3, int), 0)
        sink.consume(np.ones((2, 2), int), np.ones(2, int), 1)
        assert sink.levels.shape == (5, 2)
        assert sink.close() == {"shots_seen": 5}

    def test_queueing_sink_processes_everything(self):
        inner = _SlowSink(delay_s=0.001)
        sink = QueueingSink(inner, max_pending=2)
        for i in range(10):
            sink.consume(np.zeros((1, 2), int), np.zeros(1, int), i)
        summary = sink.close()
        assert inner.batches == list(range(10))
        assert summary == {"batches": 10, "max_pending": 2}

    def test_queueing_sink_applies_backpressure(self):
        inner = _SlowSink(delay_s=0.05)
        sink = QueueingSink(inner, max_pending=1)
        blocked = []

        def producer():
            for i in range(4):
                sink.consume(np.zeros((1, 1), int), np.zeros(1, int), i)
            blocked.append(False)

        thread = threading.Thread(target=producer)
        thread.start()
        thread.join(timeout=0.03)
        # With a 1-batch queue and a 50 ms consumer, four consumes cannot
        # finish in 30 ms: the producer must be blocked on the queue.
        assert thread.is_alive()
        assert sink.pending <= 1
        thread.join()
        sink.close()

    def test_queueing_sink_surfaces_consumer_errors(self):
        sink = QueueingSink(_FailingSink(), max_pending=2)
        sink.consume(np.zeros((1, 1), int), np.zeros(1, int), 0)
        with pytest.raises(RuntimeError, match="downstream exploded"):
            sink.close()

    def test_eraser_sink_summary(self):
        sink = EraserSpeculationSink(
            2, EraserConfig(window=3, activity_threshold=1, direct_evidence_cycles=2)
        )
        sink.consume(np.array([[2, 0], [2, 0]]), np.array([8, 8]), 0)
        summary = sink.close()
        assert summary["lrc_requests"] == 1
        assert summary["shots_seen"] == 2


class TestPipelineEndToEnd:
    def test_streaming_run_matches_offline_predict(
        self, tiny_corpus, pipeline_mlr
    ):
        sink = CollectingSink()
        pipeline = ReadoutPipeline(
            pipeline_mlr,
            tiny_corpus.chip,
            PipelineConfig(batch_size=17, workers=2),
            sink=sink,
        )
        report = pipeline.run(CorpusTraceSource(tiny_corpus, chunk_size=23))
        assert np.array_equal(sink.joint, pipeline_mlr.predict(tiny_corpus))
        assert report.n_shots == tiny_corpus.n_traces
        assert report.shots_per_second > 0
        assert report.accuracy is not None
        for stage in ("demod", "matched_filter", "discriminate", "sink"):
            assert stage in report.stage_summaries
        assert report.budget is not None and report.budget.slowdown > 0
        assert "streaming readout pipeline" in report.format_table()

    def test_default_pipeline_is_reusable_across_runs(
        self, tiny_corpus, pipeline_mlr
    ):
        pipeline = ReadoutPipeline(
            pipeline_mlr, tiny_corpus.chip, PipelineConfig(batch_size=64)
        )
        first = pipeline.run(CorpusTraceSource(tiny_corpus))
        second = pipeline.run(CorpusTraceSource(tiny_corpus))
        assert first.n_shots == second.n_shots == tiny_corpus.n_traces
        assert first.accuracy == second.accuracy

    def test_engine_construction_error_does_not_leak_sink(
        self, pipeline_mlr, five_qubit_chip
    ):
        import threading

        before = threading.active_count()
        pipeline = ReadoutPipeline(pipeline_mlr, five_qubit_chip)
        with pytest.raises(DataError):
            pipeline.run(SimulatorTraceSource(five_qubit_chip, 8, seed=1))
        assert threading.active_count() == before

    def test_report_is_json_serializable(self, tiny_corpus, pipeline_mlr):
        import json

        pipeline = ReadoutPipeline(
            pipeline_mlr, tiny_corpus.chip, PipelineConfig(batch_size=64)
        )
        report = pipeline.run(CorpusTraceSource(tiny_corpus))
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["n_shots"] == tiny_corpus.n_traces
        assert payload["budget"]["slowdown_vs_fpga"] > 0

    def test_warm_registry_skips_refit(self, tmp_path, two_qubit_chip, monkeypatch):
        fits = []
        original_fit = MLRDiscriminator.fit

        def counting_fit(self, corpus, indices):
            fits.append(1)
            return original_fit(self, corpus, indices)

        monkeypatch.setattr(MLRDiscriminator, "fit", counting_fit)
        profile = tiny_profile()
        kwargs = dict(
            n_shots=60,
            batch_size=24,
            chunk_size=30,
            registry_dir=tmp_path,
            chip=two_qubit_chip,
            device="two-qubit-test",
        )
        cold = run_streaming_pipeline(profile, **kwargs)
        warm = run_streaming_pipeline(profile, **kwargs)
        assert len(fits) == 1, "warm run must not refit"
        assert cold.calibration_cached is False
        assert warm.calibration_cached is True
        assert warm.accuracy == cold.accuracy

    def test_distinct_profiles_get_distinct_artifacts(
        self, tmp_path, two_qubit_chip
    ):
        kwargs = dict(
            n_shots=30,
            batch_size=30,
            registry_dir=tmp_path,
            chip=two_qubit_chip,
            device="two-qubit-test",
        )
        run_streaming_pipeline(tiny_profile(), **kwargs)
        run_streaming_pipeline(tiny_profile(name="tiny2"), **kwargs)
        registry = CalibrationRegistry(tmp_path)
        profiles = {key.profile for key in registry.keys()}
        assert profiles == {"tiny-s501", "tiny2-s501"}

    def test_seed_override_gets_its_own_artifact(self, tmp_path, two_qubit_chip):
        kwargs = dict(
            n_shots=30,
            batch_size=30,
            registry_dir=tmp_path,
            chip=two_qubit_chip,
            device="two-qubit-test",
        )
        cold = run_streaming_pipeline(tiny_profile(), **kwargs)
        reseeded = run_streaming_pipeline(
            tiny_profile().with_seed(777), **kwargs
        )
        # A different calibration seed must not hit the base-seed cache.
        assert cold.calibration_cached is False
        assert reseeded.calibration_cached is False
        profiles = {key.profile for key in CalibrationRegistry(tmp_path).keys()}
        assert profiles == {"tiny-s501", "tiny-s777"}

    def test_different_chip_gets_its_own_artifact(self, tmp_path, two_qubit_chip):
        from tests.conftest import make_two_qubit_chip

        kwargs = dict(
            n_shots=30, batch_size=30, registry_dir=tmp_path, device="dev"
        )
        run_streaming_pipeline(tiny_profile(), chip=two_qubit_chip, **kwargs)
        other = run_streaming_pipeline(
            tiny_profile(), chip=make_two_qubit_chip(noise_std=5.0), **kwargs
        )
        # Same device name, different chip parameters: the chip hash in
        # the key must force a fresh calibration, not serve stale kernels.
        assert other.calibration_cached is False
        devices = {key.device for key in CalibrationRegistry(tmp_path).keys()}
        assert len(devices) == 2

    def test_rejects_bad_shot_count(self, two_qubit_chip):
        with pytest.raises(ConfigurationError):
            run_streaming_pipeline(tiny_profile(), n_shots=0, chip=two_qubit_chip)

    def test_pipeline_config_validation(self):
        with pytest.raises(ConfigurationError):
            PipelineConfig(batch_size=0)
        with pytest.raises(ConfigurationError):
            PipelineConfig(workers=0)

    def test_sink_closed_when_a_stage_fails(self, tiny_corpus, pipeline_mlr):
        closed = []

        class _Sink(ResultSink):
            def consume(self, levels, joint, batch_id):
                pass

            def close(self):
                closed.append(True)
                return {}

        pipeline = ReadoutPipeline(
            pipeline_mlr, tiny_corpus.chip, PipelineConfig(), sink=_Sink()
        )
        # A longer window than the calibrated banks makes the matched
        # filter stage raise mid-run.
        long_feed = np.concatenate([tiny_corpus.feedline] * 2, axis=1)
        chunk = ShotChunk(long_feed, None, 0)

        class _Source:
            chip = tiny_corpus.chip
            n_shots = long_feed.shape[0]

            def chunks(self):
                yield chunk

        with pytest.raises(DataError):
            pipeline.run(_Source())
        assert closed == [True], "sink must be closed on the failure path"


class TestPipelineConfigValidation:
    """PipelineConfig reports every invalid knob in one error."""

    @pytest.mark.parametrize(
        "field_name", ["batch_size", "workers", "max_pending", "max_batch_size"]
    )
    @pytest.mark.parametrize("value", [0, -1, -64])
    def test_rejects_non_positive_values(self, field_name, value):
        with pytest.raises(ConfigurationError, match=field_name):
            PipelineConfig(**{field_name: value})

    def test_reports_all_invalid_fields_at_once(self):
        with pytest.raises(ConfigurationError) as err:
            PipelineConfig(batch_size=0, workers=-2, max_pending=-1,
                           max_batch_size=0)
        message = str(err.value)
        for field_name in ("batch_size", "workers", "max_pending",
                           "max_batch_size"):
            assert field_name in message, message
        # One combined error, not the first violation alone.
        assert message.count("must be >= 1") == 4

    def test_adaptive_bound_must_cover_initial_size(self):
        with pytest.raises(ConfigurationError, match="max_batch_size"):
            PipelineConfig(
                batch_size=128, adaptive_batching=True, max_batch_size=64
            )
        # Without adaptive batching the cap is inert and not enforced.
        PipelineConfig(batch_size=2048, max_batch_size=1024)

    @pytest.mark.parametrize("target", [0.0, -5.0])
    def test_rejects_non_positive_latency_target(self, target):
        with pytest.raises(ConfigurationError, match="target_batch_ms"):
            PipelineConfig(target_batch_ms=target)

    def test_valid_config_roundtrips_every_knob(self):
        config = PipelineConfig(
            batch_size=32,
            workers=2,
            max_pending=4,
            adaptive_batching=True,
            max_batch_size=256,
            target_batch_ms=2.5,
        )
        assert config.batch_size == 32
        assert config.adaptive_batching is True
        assert config.target_batch_ms == 2.5
