"""Exception hierarchy for the repro package.

All library-raised errors derive from :class:`ReproError` so callers can
catch package failures with a single ``except`` clause while standard
``ValueError``/``TypeError`` semantics are preserved through multiple
inheritance.
"""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigurationError(ReproError, ValueError):
    """A configuration object is inconsistent or out of range."""


class DataError(ReproError, ValueError):
    """A dataset or trace container is malformed for the requested use."""


class NotFittedError(ReproError, RuntimeError):
    """A model was used for inference before being fitted/trained."""


class ShapeError(ReproError, ValueError):
    """An array argument has an incompatible shape."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative algorithm failed to converge within its budget."""
