"""Sec VII.D — power consumption of the deployed design.

Paper (Synopsys DC, 45 nm): 1.561 mW total at a 1 GHz clock with a
5-cycle (5 ns) latency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api.registry import experiment
from repro.api.results import ExperimentResult
from repro.config import QUICK, Profile
from repro.experiments.common import OURS_ARCHITECTURE, OURS_REPLICAS
from repro.experiments.report import format_rows
from repro.fpga import pipeline_latency_cycles
from repro.fpga.power import estimate_design_power_mw
from repro.fpga.resources import network_shape_stats

__all__ = ["Sec7dResult", "run_sec7d_power"]

PAPER_POWER_MW = 1.561
PAPER_LATENCY_CYCLES = 5
PAPER_PARAMETERS = 6505


@dataclass(frozen=True)
class Sec7dResult(ExperimentResult):
    """Measured power and latency of the paper's architecture."""

    total_parameters: int
    power_mw: float
    latency_cycles: int

    def _paper_values(self) -> dict:
        return {
            "total_parameters": PAPER_PARAMETERS,
            "power_mw": PAPER_POWER_MW,
            "latency_cycles": PAPER_LATENCY_CYCLES,
        }

    def format_table(self) -> str:
        table = format_rows(
            ("Metric", "Measured", "Paper"),
            [
                ("power (mW @ 1 GHz)", round(self.power_mw, 3), PAPER_POWER_MW),
                ("latency (cycles)", self.latency_cycles, PAPER_LATENCY_CYCLES),
                ("parameters", self.total_parameters, 6505),
            ],
            title="Sec VII.D: power and latency of the deployed design",
        )
        return table


@experiment("sec7d", tags=("fpga", "power"), paper_ref="Sec. VII.D")
def run_sec7d_power(profile: Profile = QUICK) -> Sec7dResult:
    """Evaluate the power/latency models on the paper's architecture."""
    per_network, _ = network_shape_stats(OURS_ARCHITECTURE)
    total = per_network * OURS_REPLICAS
    return Sec7dResult(
        total_parameters=total,
        power_mw=estimate_design_power_mw(total),
        latency_cycles=pipeline_latency_cycles(OURS_ARCHITECTURE),
    )
