"""Shot sources: stream readout traces into the runtime in chunks.

A :class:`TraceSource` hides where traces come from — the dispersive
simulator generating them on the fly (:class:`SimulatorTraceSource`), or a
pre-built :class:`~repro.data.dataset.ReadoutCorpus` replayed from memory
(:class:`CorpusTraceSource`) — and delivers them as bounded
:class:`ShotChunk` batches so peak memory never depends on the total shot
count.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro._util import check_random_state
from repro.data.basis import digits_to_state
from repro.data.dataset import ReadoutCorpus
from repro.exceptions import ConfigurationError, ShapeError
from repro.physics.device import ChipConfig
from repro.physics.simulator import ReadoutSimulator

__all__ = [
    "ShotChunk",
    "TraceSource",
    "SimulatorTraceSource",
    "DriftingTraceSource",
    "CorpusTraceSource",
]


@dataclass(frozen=True)
class ShotChunk:
    """A contiguous block of multiplexed readout shots.

    Attributes
    ----------
    feedline:
        Complex traces (n_shots, trace_len), as digitized by the ADC pair.
    prepared_levels:
        Ground-truth per-qubit prepared levels (n_shots, n_qubits), or
        ``None`` when the source has no labels (live traffic). Used only to
        score the pipeline, never by the discriminator stages.
    chunk_id:
        Monotone sequence number assigned by the source.
    """

    feedline: np.ndarray
    prepared_levels: np.ndarray | None
    chunk_id: int

    def __post_init__(self) -> None:
        if self.feedline.ndim != 2:
            raise ShapeError(f"feedline must be 2-D, got {self.feedline.shape}")
        if (
            self.prepared_levels is not None
            and self.prepared_levels.shape[0] != self.feedline.shape[0]
        ):
            raise ShapeError(
                "prepared_levels rows must match feedline rows"
            )

    @property
    def n_shots(self) -> int:
        return self.feedline.shape[0]

    def joint_labels(self, n_levels: int) -> np.ndarray | None:
        """Ground-truth joint state indices, if labels are available."""
        if self.prepared_levels is None:
            return None
        return digits_to_state(
            self.prepared_levels.astype(np.int64), n_levels
        )


class TraceSource(ABC):
    """Streams :class:`ShotChunk` batches for one chip."""

    chip: ChipConfig

    @property
    @abstractmethod
    def n_shots(self) -> int:
        """Total shots this source will deliver."""

    @abstractmethod
    def chunks(self) -> Iterator[ShotChunk]:
        """Yield the stream, in chunk_id order."""


def _check_chunking(n_shots: int, chunk_size: int) -> None:
    if n_shots < 1:
        raise ConfigurationError(f"n_shots must be >= 1, got {n_shots}")
    if chunk_size < 1:
        raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")


class SimulatorTraceSource(TraceSource):
    """Generates shots on demand from the dispersive-readout simulator.

    Each chunk prepares independent uniformly random joint basis states
    (or draws from ``states`` when a restricted workload is wanted) and
    simulates one readout window for them — the steady-state traffic an
    online discriminator would see from a calibrated device.

    Parameters
    ----------
    chip:
        Device to simulate.
    n_shots:
        Total shots to stream.
    chunk_size:
        Shots per simulated chunk (bounds the simulator's working set).
    states:
        Optional subset of joint state indices to draw from.
    seed:
        RNG seed or generator for state draws and the simulator.
    """

    def __init__(
        self,
        chip: ChipConfig,
        n_shots: int,
        chunk_size: int = 256,
        states: np.ndarray | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        _check_chunking(n_shots, chunk_size)
        self.chip = chip
        self._n_shots = int(n_shots)
        self.chunk_size = int(chunk_size)
        self._rng = check_random_state(seed)
        if states is None:
            self.states = None
        else:
            states = np.asarray(states, dtype=np.int64)
            n_joint = chip.n_levels**chip.n_qubits
            if states.size == 0 or states.min() < 0 or states.max() >= n_joint:
                raise ConfigurationError(
                    f"states must be non-empty indices in [0, {n_joint})"
                )
            self.states = states
        self._sim = ReadoutSimulator(chip, seed=self._rng)

    @property
    def n_shots(self) -> int:
        return self._n_shots

    def _simulate(self, digits: np.ndarray, delivered: int):
        """Simulate one chunk; ``delivered`` shots preceded it.

        Hook for sources whose device varies along the stream
        (:class:`DriftingTraceSource`); the base device is stationary.
        """
        del delivered  # a stationary device has no stream clock
        return self._sim.simulate(digits)

    def chunks(self) -> Iterator[ShotChunk]:
        from repro.data.basis import state_to_digits

        chunk_id = 0
        delivered = 0
        remaining = self._n_shots
        while remaining > 0:
            size = min(self.chunk_size, remaining)
            if self.states is None:
                digits = self._rng.integers(
                    0, self.chip.n_levels, size=(size, self.chip.n_qubits)
                )
            else:
                joint = self._rng.choice(self.states, size=size)
                digits = state_to_digits(
                    joint, self.chip.n_qubits, self.chip.n_levels
                )
            result = self._simulate(digits, delivered)
            yield ShotChunk(
                feedline=result.feedline,
                prepared_levels=result.prepared_levels,
                chunk_id=chunk_id,
            )
            chunk_id += 1
            delivered += size
            remaining -= size


class DriftingTraceSource(SimulatorTraceSource):
    """Streams shots from a device whose parameters drift mid-session.

    Each chunk is simulated from the chip a :class:`~repro.physics.drift
    .DriftModel` predicts at that chunk's position on the session clock:
    ``shot_offset`` (traffic already served before this stream) plus the
    shots delivered so far. The calibrated discriminator downstream was
    fitted at clock zero, so a drifting stream is exactly the staleness
    scenario online drift detection and hot recalibration exist for.

    Everything but the per-chunk device — state draws, chunking, label
    carriage, RNG sharing — is inherited from
    :class:`SimulatorTraceSource`, so the two sources are bit-identical
    under a null drift model.

    Parameters
    ----------
    chip:
        The *calibrated* device; drift evolves away from it.
    drift:
        Parameter evolution applied per chunk.
    n_shots, chunk_size, states, seed:
        As :class:`SimulatorTraceSource`.
    shot_offset:
        Session shots already streamed before this source starts —
        serving sessions thread their cumulative shot clock through
        here so drift accumulates *across* runs, not just within one.
    """

    def __init__(
        self,
        chip: ChipConfig,
        drift,
        n_shots: int,
        chunk_size: int = 256,
        states: np.ndarray | None = None,
        seed: int | np.random.Generator | None = None,
        shot_offset: int = 0,
    ) -> None:
        if shot_offset < 0:
            raise ConfigurationError(
                f"shot_offset must be >= 0, got {shot_offset}"
            )
        super().__init__(
            chip, n_shots=n_shots, chunk_size=chunk_size, states=states,
            seed=seed,
        )
        self.drift = drift
        self.shot_offset = int(shot_offset)

    def _simulate(self, digits: np.ndarray, delivered: int):
        chip_now = self.drift.chip_at(
            self.chip, self.shot_offset + delivered
        )
        if chip_now is self.chip:
            return self._sim.simulate(digits)
        # A fresh simulator per drifted snapshot, sharing the stream's
        # RNG so the draw sequence matches the stationary source's.
        return ReadoutSimulator(chip_now, seed=self._rng).simulate(digits)


class CorpusTraceSource(TraceSource):
    """Replays an existing corpus as a stream (optionally shuffled).

    Useful for regression runs on saved datasets and for tests that need a
    deterministic stream. Unshuffled replay yields contiguous *views*
    into the corpus arrays — the downstream stages never write into a
    chunk's feedline, so copying every chunk (what fancy indexing with a
    shuffled order does unavoidably) was pure hot-path overhead.
    """

    def __init__(
        self,
        corpus: ReadoutCorpus,
        chunk_size: int = 256,
        shuffle: bool = False,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        _check_chunking(corpus.n_traces, chunk_size)
        self.chip = corpus.chip
        self.corpus = corpus
        self.chunk_size = int(chunk_size)
        # None marks in-order replay (the zero-copy path); an index
        # permutation exists only when a shuffle actually reorders.
        self._order: np.ndarray | None = None
        if shuffle:
            order = np.arange(corpus.n_traces)
            check_random_state(seed).shuffle(order)
            self._order = order

    @property
    def n_shots(self) -> int:
        return self.corpus.n_traces

    def chunks(self) -> Iterator[ShotChunk]:
        for chunk_id, start in enumerate(
            range(0, self.corpus.n_traces, self.chunk_size)
        ):
            stop = start + self.chunk_size
            if self._order is None:
                # Zero-copy views are shared with the corpus (and every
                # other replay of it): hand them out read-only so a
                # downstream stage can never silently corrupt it.
                feedline = self.corpus.feedline[start:stop]
                feedline.flags.writeable = False
                levels = self.corpus.prepared_levels[start:stop]
                levels.flags.writeable = False
            else:
                idx = self._order[start:stop]
                feedline = self.corpus.feedline[idx]
                levels = self.corpus.prepared_levels[idx]
            yield ShotChunk(
                feedline=feedline,
                prepared_levels=levels,
                chunk_id=chunk_id,
            )
