"""FNN data-scaling study (documents the Table II deviation).

The 687k-parameter FNN needs far more training data than the profile-scale
corpora provide; its fidelity recovers monotonically with shots per state.
This runner measures that curve alongside the paper's design, which is
already converged at small corpora — the sample-efficiency story behind
the modular architecture.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api.registry import experiment
from repro.api.results import ExperimentResult
from repro.config import QUICK, Profile
from repro.data import generate_corpus
from repro.discriminators import FNNBaseline, MLRDiscriminator
from repro.experiments.common import NN_LEARNING_RATE
from repro.experiments.report import format_rows
from repro.ml import stratified_split
from repro.ml.metrics import geometric_mean_fidelity, per_qubit_fidelity
from repro.physics.device import default_five_qubit_chip

__all__ = ["FNNScalingResult", "run_fnn_scaling"]

DEFAULT_SHOT_LADDER = (8, 16, 32)


@dataclass(frozen=True)
class FNNScalingResult(ExperimentResult):
    """F5Q of the FNN and OURS at each corpus size."""

    shots_per_state: tuple[int, ...]
    fnn_f5q: tuple[float, ...]
    ours_f5q: tuple[float, ...]

    def format_table(self) -> str:
        rows = [
            (s, f, o)
            for s, f, o in zip(self.shots_per_state, self.fnn_f5q, self.ours_f5q)
        ]
        table = format_rows(
            ("Shots/state", "FNN F5Q", "OURS F5Q"),
            rows,
            title="FNN data-scaling (sample efficiency of the modular design)",
        )
        return (
            f"{table}\n"
            "FNN recovers toward its paper number (0.898) with data; OURS is\n"
            "already converged at small corpora."
        )


@experiment(
    "fnn_scaling",
    tags=("scaling", "fidelity"),
    paper_ref="Table II (deviation study)",
)
def run_fnn_scaling(
    profile: Profile = QUICK,
    shot_ladder: tuple[int, ...] = DEFAULT_SHOT_LADDER,
) -> FNNScalingResult:
    """Train both designs at each corpus size and record F5Q."""
    chip = default_five_qubit_chip()
    fnn_curve, ours_curve = [], []
    for shots in shot_ladder:
        corpus = generate_corpus(
            chip, shots_per_state=shots, seed=profile.seed + shots
        )
        train, test = stratified_split(
            corpus.labels, 0.3, seed=profile.seed + shots + 1
        )
        fnn = FNNBaseline(
            epochs=profile.fnn_epochs,
            batch_size=profile.batch_size,
            seed=profile.seed + shots + 2,
        )
        ours = MLRDiscriminator(
            epochs=profile.nn_epochs,
            learning_rate=NN_LEARNING_RATE,
            batch_size=profile.batch_size,
            seed=profile.seed + shots + 3,
        )
        for model, curve in ((fnn, fnn_curve), (ours, ours_curve)):
            model.fit(corpus, train)
            pred = model.predict(corpus, test)
            fid = per_qubit_fidelity(
                corpus.labels[test], pred, corpus.n_qubits, corpus.n_levels
            )
            curve.append(geometric_mean_fidelity(fid))
    return FNNScalingResult(
        shots_per_state=tuple(shot_ladder),
        fnn_f5q=tuple(fnn_curve),
        ours_f5q=tuple(ours_curve),
    )
