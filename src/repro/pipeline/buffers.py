"""Reusable batch buffers for the zero-copy serving loop.

A warm pipeline used to allocate three arrays per micro-batch: the
concatenated feedline block, the raw feature block, and its standardized
copy. :class:`BufferRing` preallocates a small ring of paired
(feedline, features) slots sized for the batcher's largest possible
emission; :meth:`MicroBatcher.rebatch <repro.pipeline.batching
.MicroBatcher.rebatch>` assembles each batch directly into a slot's
feedline buffer, and the engine writes raw scores into the paired
feature buffer and standardizes them in place — so a steady-state
serving loop performs no per-batch array allocation at all.

Ownership contract: a slot is valid from :meth:`BufferRing.acquire`
until the ring wraps back around to it (``slots`` acquisitions later).
The default two-slot ring therefore supports exactly one batch in
flight while the next is being assembled; anything holding a batch
longer — a sink retaining raw traces, a test comparing batches — must
copy.

That contract is *enforced* when ``REPRO_SANITIZE`` is set:
:func:`make_buffer_ring` (the construction point the runner uses)
returns a :class:`~repro.analysis.sanitizers.ring.GuardedBufferRing`
whose slot handles are generation-tagged (use-after-recycle raises with
the original acquisition site), whose recycled slots are poison-filled,
and whose assembled batches are sealed read-only. Unarmed, the plain
ring here has zero bookkeeping overhead.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["BufferRing", "make_buffer_ring"]


class _Slot:
    """One (feedline, features) buffer pair, grown lazily to fit."""

    __slots__ = ("feedline", "features")

    def __init__(self) -> None:
        self.feedline: np.ndarray | None = None
        self.features: np.ndarray | None = None


class BufferRing:
    """A fixed ring of reusable (feedline, features) batch buffers.

    Parameters
    ----------
    max_batch:
        Largest batch any slot must hold — the batcher's
        ``max_emit_size``.
    n_features:
        Feature columns of the paired float buffer (``n_qubits *
        filters_per_qubit``).
    slots:
        Ring depth; 2 covers the one-in-flight serving loop.

    Buffers are allocated lazily on first :meth:`acquire` (the trace
    length is a stream property, not a construction-time one) and
    reallocated only if a longer trace window ever appears.
    """

    def __init__(
        self, max_batch: int, n_features: int, slots: int = 2
    ) -> None:
        if max_batch < 1:
            raise ConfigurationError(f"max_batch must be >= 1, got {max_batch}")
        if n_features < 1:
            raise ConfigurationError(
                f"n_features must be >= 1, got {n_features}"
            )
        if slots < 2:
            raise ConfigurationError(f"slots must be >= 2, got {slots}")
        self.max_batch = int(max_batch)
        self.n_features = int(n_features)
        self._slots = [_Slot() for _ in range(slots)]
        self._next = 0
        self._acquired = 0

    @property
    def slots(self) -> int:
        return len(self._slots)

    @property
    def acquired(self) -> int:
        """Total acquisitions so far (for reuse diagnostics)."""
        return self._acquired

    def acquire(self, n_shots: int, trace_len: int) -> np.ndarray | None:
        """Advance the ring; return a ``(n_shots, trace_len)`` feedline view.

        Returns ``None`` when the batch exceeds ``max_batch`` — the
        caller falls back to a plain allocation rather than corrupting a
        neighboring slot.
        """
        if n_shots > self.max_batch:
            return None
        slot = self._slots[self._next]
        self._next = (self._next + 1) % len(self._slots)
        self._acquired += 1
        if slot.feedline is None or slot.feedline.shape[1] < trace_len:
            slot.feedline = np.empty(
                (self.max_batch, trace_len), dtype=np.complex128
            )
            slot.features = np.empty(
                (self.max_batch, self.n_features), dtype=np.float64
            )
        return slot.feedline[:n_shots, :trace_len]

    def seal(self, view: np.ndarray) -> np.ndarray:
        """Hand-off hook the batcher calls once a batch is assembled.

        A no-op here; the sanitizer ring overrides it to flip the view
        ``writeable=False`` so downstream stages cannot scribble on the
        feedline block they were handed.
        """
        return view

    def paired_features(self, feedline: np.ndarray) -> np.ndarray | None:
        """The feature buffer paired with a ring-owned feedline view.

        Matches by buffer identity — the view's ``.base`` chain is
        walked to its allocation (sanitizer handles add a view layer) —
        so only batches actually assembled into this ring get a paired
        feature block; foreign arrays return ``None`` and the engine
        falls back to its own scratch.
        """
        base = feedline.base
        if base is None:
            return None
        while base.base is not None:
            base = base.base
        for slot in self._slots:
            if slot.feedline is base:
                return slot.features[: feedline.shape[0]]
        return None


def make_buffer_ring(
    max_batch: int, n_features: int, slots: int = 2
) -> BufferRing:
    """The ring the serving loop should construct.

    Returns the plain :class:`BufferRing` normally; with the
    ``REPRO_SANITIZE`` environment flag set, a
    :class:`~repro.analysis.sanitizers.ring.GuardedBufferRing` reporting
    into the global sanitizer log — the ``trace_lock`` creation-time
    arming idiom.
    """
    from repro.analysis.sanitizers import enabled

    if not enabled():
        return BufferRing(max_batch, n_features, slots)
    from repro.analysis.sanitizers.ring import GuardedBufferRing

    return GuardedBufferRing(max_batch, n_features, slots)
