"""Headline bench: model-size and LUT ratios from the abstract.

Paper: ~100x smaller model than the FNN, ~10x than HERQULES; 60x fewer
LUTs than the FNN.
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.headline import run_headline


def test_headline_ratios(benchmark, profile):
    result = run_once(benchmark, run_headline, profile)
    print("\n" + result.format_table())
    assert result.model_size_vs_fnn == pytest.approx(105.6, rel=0.02)
    assert 4 < result.model_size_vs_herqules < 12
    assert result.lut_ratio_vs_fnn == pytest.approx(60, rel=0.05)
    assert result.lut_ratio_vs_herqules == pytest.approx(4, rel=0.05)
