"""Benchmark configuration: shared profile and single-round defaults.

Each bench regenerates one of the paper's tables/figures at the ``quick``
profile, printing paper-vs-measured values. Corpora and trained models are
cached in-process (see repro.experiments.common), so a full bench session
trains each design once.

Benches can additionally publish machine-readable numbers: running with
``--json PATH`` (e.g. ``pytest benchmarks/bench_pipeline_throughput.py
--json BENCH_pipeline.json`` — bench files match ``bench_*.py``, not
pytest's default pattern, so name them explicitly) writes every payload
registered through :func:`record_bench_result` to ``PATH``, which is how
throughput numbers land in the perf trajectory.
"""

from __future__ import annotations

import json
import sys

import pytest

from repro.config import QUICK

#: Payloads registered by benches this session, keyed by bench name.
_RESULTS: dict[str, object] = {}


def _results_store() -> dict[str, object]:
    """The one canonical results dict for this process.

    pytest imports this conftest under its own module name while benches
    import it as ``benchmarks.conftest`` — two module instances, two
    ``_RESULTS``. Both record and dump resolve through the importable
    package module when it exists, so every payload lands in one place.
    """
    twin = sys.modules.get("benchmarks.conftest")
    if twin is not None:
        return twin._RESULTS
    return _RESULTS


def pytest_addoption(parser):
    parser.addoption(
        "--json",
        action="store",
        default=None,
        metavar="PATH",
        help="write registered bench results as JSON to PATH",
    )


def record_bench_result(name: str, payload: object) -> None:
    """Register a JSON-able payload for the session's ``--json`` dump."""
    _results_store()[name] = payload


def pytest_sessionfinish(session, exitstatus):
    path = session.config.getoption("--json")
    results = _results_store()
    if path and results:
        with open(path, "w") as fh:
            json.dump(results, fh, indent=2, sort_keys=True)


@pytest.fixture(scope="session")
def profile():
    return QUICK


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
