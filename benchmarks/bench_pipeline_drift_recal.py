"""Drift-recalibration bench: staleness cost vs hot-recovery cost.

Three arms over identical seeded traffic on one two-qubit feedline:

- **baseline** — stationary device, warm session: the cold-calibrated
  accuracy every other arm is scored against.
- **degrade** — readout-tone detuning injected at a fixed rate per
  kilo-shot with recalibration off: the session's ``ReadoutService``
  keeps serving the stale version-0 artifact and accuracy decays run
  over run (the silent-staleness failure mode).
- **recover** — same seed, same drift, recalibration on: the online
  drift monitor trips its alarm, the service refits against the drifted
  device snapshot and hot-swaps the next artifact version without
  dropping a run, and the freshly recalibrated run lands back within a
  point of baseline.

The recorded payload (``pipeline_drift_recal`` in ``BENCH_pipeline
.json``) is the scenario's scorecard: per-run accuracy and drift score
for both arms, the recalibration count and wall cost (the price of
recovery), and the final-run accuracy gap.

Runs standalone too::

    PYTHONPATH=src:. python benchmarks/bench_pipeline_drift_recal.py \
        [--quick] --json BENCH_pipeline.json
"""

from __future__ import annotations

import argparse
import json

from benchmarks.conftest import record_bench_result, run_once
from repro.config import Profile
from repro.serve import (
    BatchingSpec,
    CalibrationSpec,
    ClusterSpec,
    DriftSpec,
    ReadoutService,
    RecalibrationSpec,
    ServeSpec,
    TrafficSpec,
)

#: Readout-tone detuning rate (GHz per kilo-shot) of the scenario: one
#: 500-shot run drifts 0.04 MHz — harmless — while six runs accumulate
#: ~0.25 MHz, enough to wreck matched-filter demodulation.
DRIFT_RATE_GHZ_PER_KSHOT = 8e-5

#: Drift-score alarm threshold: above the stationary noise floor of the
#: scenario (~0.021, and ~0.028 after one run of drift), below the
#: score two runs of unrecovered drift produce (~0.048).
ALARM_THRESHOLD = 0.035


def _bench_profile() -> Profile:
    """A small but properly trained sizing (QUICK-grade epochs)."""
    return Profile(
        name="driftbench",
        shots_per_state=40,
        calibration_shots=100,
        nn_epochs=150,
        fnn_epochs=2,
        batch_size=64,
        qec_shots=10,
        qudit_shots=10,
        spectral_max_points=100,
        seed=701,
    )


def _spec(recalibrate: bool, drifting: bool, shots: int) -> ServeSpec:
    return ServeSpec(
        traffic=TrafficSpec(shots=shots, chunk_size=max(1, shots // 2)),
        cluster=ClusterSpec(qubits_per_feedline=2),
        batching=BatchingSpec(batch_size=max(1, shots // 4)),
        calibration=CalibrationSpec(),
        drift=(
            DriftSpec(if_detune_ghz_per_kshot=DRIFT_RATE_GHZ_PER_KSHOT)
            if drifting
            else DriftSpec()
        ),
        recalibration=RecalibrationSpec(
            enabled=recalibrate, threshold=ALARM_THRESHOLD, cooldown_runs=1
        ),
    )


def _run_arm(
    spec: ServeSpec,
    profile: Profile,
    n_runs: int,
    stop_after_recalibration: bool = False,
) -> dict:
    """Serve from one warm session; digest the session.

    With ``stop_after_recalibration`` the arm serves until the drift
    alarm has triggered a hot recalibration, then serves exactly one
    more run — the freshly recalibrated run the recovery claim is
    scored on — instead of a fixed count.
    """
    with ReadoutService(spec, profile=profile) as service:
        reports = []
        for _ in range(n_runs):
            reports.append(service.run())
            if (
                stop_after_recalibration
                and service.stats.runs[-1].recalibrated
            ):
                reports.append(service.run())
                break
        stats = service.stats
        versions = service.artifact_versions()
    return {
        "accuracies": [report.accuracy for report in reports],
        "drift_scores": [report.drift_score for report in reports],
        "alarms": [bool(report.drift_alarm) for report in reports],
        "recalibrated_after_run": [run.recalibrated for run in stats.runs],
        "recalibrations": stats.recalibrations,
        "recal_seconds": stats.recal_seconds,
        "warm_seconds": stats.warm_seconds,
        "n_runs": stats.n_runs,
        "artifact_versions": versions,
    }


def _drift_recal_scenario(
    profile: Profile | None = None, shots: int = 500, n_runs: int = 7
) -> dict:
    """Run the three arms; returns the JSON-able scorecard."""
    profile = profile if profile is not None else _bench_profile()
    baseline = _run_arm(_spec(False, drifting=False, shots=shots), profile, 1)
    degrade = _run_arm(
        _spec(False, drifting=True, shots=shots), profile, n_runs
    )
    recover = _run_arm(
        _spec(True, drifting=True, shots=shots),
        profile,
        n_runs,
        stop_after_recalibration=True,
    )
    baseline_accuracy = baseline["accuracies"][0]
    return {
        "shots_per_run": shots,
        "n_runs": n_runs,
        "drift_rate_ghz_per_kshot": DRIFT_RATE_GHZ_PER_KSHOT,
        "alarm_threshold": ALARM_THRESHOLD,
        "baseline_accuracy": baseline_accuracy,
        "degrade": degrade,
        "recover": recover,
        "final_accuracy_without_recal": degrade["accuracies"][-1],
        "final_accuracy_with_recal": recover["accuracies"][-1],
        "final_gap_without_recal": (
            baseline_accuracy - degrade["accuracies"][-1]
        ),
        "final_gap_with_recal": (
            baseline_accuracy - recover["accuracies"][-1]
        ),
        "refit_cost_seconds": recover["recal_seconds"],
    }


def _check_scenario(result: dict) -> None:
    """The acceptance shape shared by pytest and the standalone run."""
    degrade, recover = result["degrade"], result["recover"]
    # Staleness: with recalibration off the session measurably decays.
    assert result["final_gap_without_recal"] > 0.05, result
    assert degrade["recalibrations"] == 0
    assert degrade["artifact_versions"] == {"feedline-0": 0}
    # Detection: the monitor saw the drift and said so.
    assert any(degrade["alarms"]), "drift must raise an alarm"
    assert degrade["drift_scores"][-1] > degrade["drift_scores"][0]
    # Recovery: the alarm triggered a refit, versions moved, and every
    # attempted run completed (zero dropped runs).
    assert recover["recalibrations"] >= 1
    assert recover["artifact_versions"]["feedline-0"] >= 1
    assert recover["n_runs"] == len(recover["accuracies"])
    assert recover["recalibrated_after_run"][-2] is True
    # The freshly recalibrated run sits within a point of baseline.
    assert result["final_gap_with_recal"] <= 0.01, result
    # And recovery beats staleness where it counts.
    assert (
        result["final_accuracy_with_recal"]
        > result["final_accuracy_without_recal"]
    )


def test_pipeline_drift_recal(benchmark):
    result = run_once(benchmark, _drift_recal_scenario)
    _check_scenario(result)
    record_bench_result("pipeline_drift_recal", result)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--shots", type=int, default=500)
    parser.add_argument("--runs", type=int, default=7)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller session (CI smoke): 5 degradation runs",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="merge the scenario payload into PATH (e.g. BENCH_pipeline.json)",
    )
    args = parser.parse_args(argv)
    shots, runs = args.shots, args.runs
    if args.quick:
        # Shot count stays at 500: the drift clock (and so every
        # threshold crossing) is a function of shots per run, and the
        # quick mode must exercise the same crossings CI asserts on.
        shots, runs = 500, 5

    result = _drift_recal_scenario(shots=shots, n_runs=runs)
    _check_scenario(result)

    print("pipeline_drift_recal")
    print(f"  baseline accuracy      {result['baseline_accuracy']:.4f}")
    print(
        "  final w/o recal        "
        f"{result['final_accuracy_without_recal']:.4f} "
        f"(gap {result['final_gap_without_recal']:.4f})"
    )
    print(
        "  final with recal       "
        f"{result['final_accuracy_with_recal']:.4f} "
        f"(gap {result['final_gap_with_recal']:.4f})"
    )
    print(
        f"  recalibrations         {result['recover']['recalibrations']} "
        f"in {result['refit_cost_seconds']:.2f} s"
    )
    if args.json:
        try:
            with open(args.json) as fh:
                payload = json.load(fh)
        except (OSError, json.JSONDecodeError):
            payload = {}
        payload["pipeline_drift_recal"] = result
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"results merged into {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
