"""Declarative serving: one spec, one warm session, many runs.

The serving counterpart of :mod:`repro.api` — where ``run_pipeline``
rebuilds executors and calibration on every call, this package makes the
paper's *persistent* datapath explicit:

- :mod:`repro.serve.spec` — :class:`ServeSpec`, the frozen, composable,
  JSON round-trip-stable configuration layer (:class:`TrafficSpec` /
  :class:`ClusterSpec` / :class:`BatchingSpec` / :class:`CalibrationSpec`
  / :class:`DriftSpec` / :class:`RecalibrationSpec`) with exhaustive
  all-errors-at-once validation. Every other configuration surface
  (``run_pipeline`` kwargs, ``PipelineConfig``, ``repro pipeline``
  flags) is derived from it.
- :mod:`repro.serve.service` — :class:`ReadoutService`, the long-lived
  session: ``warm()`` once (pre-fit/load all discriminators, pre-spawn
  shard pools), then ``run()`` repeatedly with zero refits — unless a
  run's online drift score trips the alarm and the spec's
  recalibration is enabled, in which case the service refits through
  the shard pool and hot-swaps the next artifact version without
  dropping the session — accumulating cumulative :class:`ServiceStats`.
  :func:`serve_once` is the one-shot bridge the legacy fronts stand on.

CLI: ``repro serve --spec spec.json [--shots N] [--repeat K] [--json]``.
"""

from repro.serve.service import (
    ReadoutService,
    RunStats,
    ServiceStats,
    serve_once,
)
from repro.serve.spec import (
    BatchingSpec,
    CalibrationSpec,
    ClusterSpec,
    DriftSpec,
    RecalibrationSpec,
    ServeSpec,
    TrafficSpec,
)

__all__ = [
    "BatchingSpec",
    "CalibrationSpec",
    "ClusterSpec",
    "DriftSpec",
    "ReadoutService",
    "RecalibrationSpec",
    "RunStats",
    "ServeSpec",
    "ServiceStats",
    "TrafficSpec",
    "serve_once",
]
